"""Footprint-based partial-order reduction (POR) analysis.

Interleavings of *independent* rule firings are the last classic source of
state-space blowup the exploration kernel had no answer to: after symmetry
reduction (PR 2) and prefix reuse (PR 3), a candidate check still explores
every shuffle of, say, cache 0's fetch protocol against cache 1's — even
though the shuffles commute and none of them can change a verdict.  This
module computes, per rule, a read/write **footprint** and the derived
**independence**, **necessary-enabling**, and **visibility** relations;
the kernel (:class:`~repro.mc.kernel.ExplorationKernel`) uses them to
expand a persistent (ample/stubborn-style) subset of the enabled rules at
reducible states instead of all of them.

How footprints are computed
---------------------------

Rules are plain Python closures, so there is nothing to analyse statically.
Instead the analysis **replays** every rule over a bounded *probe*
exploration of the system itself:

* **reads** come from firing the rule against an instrumented state wrapper
  (:func:`wrap_state`) that mimics the state containers — tuples, records,
  multisets, frozensets, process arrays, unordered networks — and records
  which *locations* (access paths) the guard and body actually observe.
  Structural navigation and copy-through (e.g. ``View`` unpacking a state
  it will rebuild unchanged) record nothing; only observations that can
  influence behaviour — comparisons, membership tests, sizes, iteration,
  values flowing into a *different* location of the successor — count.
* **writes** come from structurally diffing each plain firing's successor
  against its source state (:func:`diff_states`), down to tuple positions,
  record fields, multiset element counts, and set members.  Commuting
  updates (multiset count deltas, idempotent set adds) are distinguished
  from overwrites so that two sends to the same network never count as a
  conflict merely because both grew the bag.
* **visibility** is observed semantically: a rule is visible for a
  property iff some probed firing changed that property's truth value —
  including one-step firings at invariant-violating boundary states,
  which the probe checks without expanding (a rule that only flips a
  property back *at* the violation must still count, or a reduced search
  could defer its way around the violating interleaving).
* **guard atoms** and **write conditions** are learned as value tables:
  the ordered single-location reads of each guard's short-circuit
  evaluation with a value→truth table per position, and, for writes that
  only happen sometimes, a predictor location whose value decides them.
  Together they give each disabled rule a small, state-refined
  *necessary enabling set* — the writers of a provably-false atom —
  instead of the whole static may-enable cone.

When the probe drains the frontier (``complete=True``) — which it does for
every catalog protocol at its bench sizes, and for catalog skeletons it
drains the *union over all hole actions* of every candidate's space —
these relations are exact over the reachable states, and the reduction is
sound by the standard ample-set argument (see ``docs/architecture.md``).
When the probe is truncated the relations are conservative best-effort
(never-fired rules are treated as touching everything) and the POR
equivalence matrix (``tests/integration/test_por_equivalence.py``) is the
regression gate.

Hole-aware replay
-----------------

Skeleton rules resolve synthesis holes mid-body.  The probe resolves each
hole against *every* action in its domain (odometer enumeration per
firing, capped), so footprints are unioned over all completions — which
makes ample-set decisions identical for every candidate of one skeleton.
That alignment is what lets POR compose with the prefix-reuse cache: a
prefix checkpoint's reduced exploration is exactly the reduced exploration
every extending candidate would have produced.  Guards receive only the
state — never the execution context — so a guard can't resolve a hole,
which is what guarantees enabled sets (and therefore ample decisions) are
candidate-independent in the first place.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.mc.context import ExecutionContext
from repro.mc.multiset import Multiset
from repro.mc.state import Record

try:  # the DSL containers are optional structure the wrapper understands
    from repro.dsl.network import Message, UnorderedNetwork
    from repro.dsl.process import ProcessArray
except ImportError:  # pragma: no cover - the DSL is part of this package
    Message = UnorderedNetwork = ProcessArray = None

#: default probe cap — on the *raw* (symmetry-unreduced) state graph, so
#: that every observed relation is permutation-closed and therefore valid
#: for whichever orbit representatives a reduced exploration happens to
#: visit.  Large enough to drain every catalog system's raw space at its
#: bench sizes while bounding analysis cost on larger models.
DEFAULT_PROBE_LIMIT = 6144

#: cap on hole-action combinations enumerated per (state, rule) firing
DEFAULT_COMBO_LIMIT = 64

#: cap on instrumented (read-tracking) firings per rule; reads converge
#: after a handful of samples because rule bodies are table-driven
TRACKED_FIRE_LIMIT = 24

#: cap on instrumented guard evaluations per rule; beyond the first few
#: states, guards are sampled on a deterministic stride across the whole
#: probe so the atom truth tables see late-exploration values too
TRACKED_GUARD_LIMIT = 512

#: every rule tracks its guard at each of the first few probe states ...
TRACKED_GUARD_WARMUP = 8

#: ... and then at every STRIDE-th probe state (phase-shifted per rule)
TRACKED_GUARD_STRIDE = 16

# -- locations ---------------------------------------------------------------
#
# A location is a tuple of path segments.  Plain segments (ints for tuple
# positions, strings for record fields) descend into structure; a terminal
# marker segment (itself a tuple) refines container access:
#
#   ("elem", key)          one element of a multiset / frozenset / network
#   ("eclass", mtype, dst) the class of network messages a deliverable()
#                          scan observes (mtype None = any type)
#   ("size",)              the element count
#
# An absent marker means the whole subtree.

Location = Tuple[Any, ...]

#: write kinds: "set" overwrites, "delta" commutes with "delta" (counter
#: increments), "add"/"remove" commute with themselves (idempotent set ops)
_COMMUTING = {("delta", "delta"), ("add", "add"), ("remove", "remove")}


def ser(value: Any) -> Any:
    """Serialise a container element into a hashable comparison key.

    Message elements keep their structure (the ``eclass`` conflict check
    needs the type and destination); everything else becomes a tagged
    primitive tree, with ``repr`` as the fallback for exotic values.
    """
    if Message is not None and isinstance(value, Message):
        return ("msg", value.mtype, value.src, value.dst, ser(value.payload))
    if isinstance(value, tuple):
        return ("tup",) + tuple(ser(item) for item in value)
    if isinstance(value, Record):
        return ("rec",) + tuple((name, ser(item)) for name, item in value)
    if isinstance(value, frozenset):
        return ("fs",) + tuple(sorted((repr(ser(item)), ser(item)) for item in value))
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    return ("repr", repr(value))


def _markers_conflict(a: Tuple, b: Tuple) -> bool:
    """Whether two terminal marker segments can touch the same data.

    ``size`` and ``eclass`` markers only ever appear on the *read* side
    (diffs record element-level writes; size changes are implied), so a
    ``size`` marker meeting anything else is a size read observing an
    element change — a conflict.
    """
    ka, kb = a[0], b[0]
    if ka == "size" or kb == "size":
        return True
    if ka == "elem" and kb == "elem":
        return a[1] == b[1]
    if ka == "eclass" or kb == "eclass":
        eclass, elem = (a, b) if ka == "eclass" else (b, a)
        if elem[0] == "eclass":
            return True
        key = elem[1]
        if isinstance(key, tuple) and key and key[0] == "msg":
            mtype_ok = eclass[1] is None or eclass[1] == key[1]
            return mtype_ok and eclass[2] == key[3]
        return True  # non-message element vs a class scan: assume overlap
    return True


def locations_conflict(a: Location, b: Location) -> bool:
    """Whether two access paths can denote overlapping state.

    Paths that diverge at a plain segment address disjoint subtrees; a
    path that is a prefix of another covers it; marker segments resolve
    via :func:`_markers_conflict`.
    """
    for x, y in zip(a, b):
        if x == y:
            continue
        x_marker = isinstance(x, tuple)
        y_marker = isinstance(y, tuple)
        if x_marker and y_marker:
            return _markers_conflict(x, y)
        if x_marker or y_marker:
            return True  # marker vs deeper structure: assume overlap
        return False
    return True


def writes_conflict(
    writes_a: Dict[Location, str], writes_b: Dict[Location, str]
) -> bool:
    """Write/write conflict: overlapping locations with non-commuting kinds."""
    for loc_a, kind_a in writes_a.items():
        for loc_b, kind_b in writes_b.items():
            if (kind_a, kind_b) in _COMMUTING:
                continue
            if locations_conflict(loc_a, loc_b):
                return True
    return False


def read_write_conflict(
    reads: Set[Location], writes: Dict[Location, str]
) -> bool:
    """Read/write conflict: any written location a read can observe."""
    for loc_w in writes:
        for loc_r in reads:
            if locations_conflict(loc_r, loc_w):
                return True
    return False


# -- the access log and tracked wrappers -------------------------------------


class AccessLog:
    """Collects the reads of one instrumented evaluation.

    ``reads`` is the unordered union; ``seq`` keeps the observation order
    together with the observed value — guard tracking uses it to learn a
    guard's *atom* structure (see :class:`RuleFootprint`).
    """

    __slots__ = ("reads", "seq", "active")

    def __init__(self) -> None:
        self.reads: Set[Location] = set()
        self.seq: List[Tuple[Location, Any]] = []
        self.active = True

    def read(self, location: Location, value: Any = None) -> None:
        """Record one observed read (no-op when the log is detached)."""
        if self.active:
            self.reads.add(location)
            self.seq.append((location, value))


class _Tracked:
    """Base for wrappers: shared raw value, path, and log plumbing."""

    __slots__ = ("raw", "path", "log")

    def __init__(self, raw: Any, path: Location, log: AccessLog) -> None:
        self.raw = raw
        self.path = path
        self.log = log

    def _observe(self) -> None:
        self.log.read(self.path, self.raw)

    def __eq__(self, other: object) -> bool:
        self._observe()
        return self.raw == unwrap(other)

    def __ne__(self, other: object) -> bool:
        self._observe()
        return self.raw != unwrap(other)

    def __hash__(self) -> int:
        self._observe()
        return hash(self.raw)

    def __repr__(self) -> str:
        self._observe()
        return repr(self.raw)

    def __bool__(self) -> bool:
        self._observe()
        return bool(self.raw)


class TrackedLeaf(_Tracked):
    """Wraps an int/str/bool leaf; any use of the value records a read."""

    __slots__ = ()

    def __lt__(self, other):
        self._observe()
        return self.raw < unwrap(other)

    def __le__(self, other):
        self._observe()
        return self.raw <= unwrap(other)

    def __gt__(self, other):
        self._observe()
        return self.raw > unwrap(other)

    def __ge__(self, other):
        self._observe()
        return self.raw >= unwrap(other)

    def __add__(self, other):
        self._observe()
        return self.raw + unwrap(other)

    def __radd__(self, other):
        self._observe()
        return unwrap(other) + self.raw

    def __sub__(self, other):
        self._observe()
        return self.raw - unwrap(other)

    def __rsub__(self, other):
        self._observe()
        return unwrap(other) - self.raw

    def __neg__(self):
        self._observe()
        return -self.raw

    def __index__(self):
        self._observe()
        return self.raw.__index__()

    def __int__(self):
        self._observe()
        return int(self.raw)


class TrackedTuple(_Tracked):
    """Wraps a tuple; indexing/iteration navigate without recording."""

    __slots__ = ()

    def __getitem__(self, index):
        if isinstance(index, slice):
            self._observe()
            return self.raw[index]
        index = unwrap(index)
        return wrap_value(self.raw[index], self.path + (index,), self.log)

    def __iter__(self):
        for index, item in enumerate(self.raw):
            yield wrap_value(item, self.path + (index,), self.log)

    def __len__(self):
        return len(self.raw)

    def __contains__(self, item):
        self._observe()
        return unwrap(item) in self.raw


class TrackedRecord(_Tracked):
    """Wraps a :class:`~repro.mc.state.Record`; field access navigates."""

    __slots__ = ()

    def __getattr__(self, name):
        if name in ("raw", "path", "log"):
            raise AttributeError(name)
        value = getattr(self.raw, name)
        if callable(value):
            self._observe()
            return value
        return wrap_value(value, self.path + (name,), self.log)

    def update(self, **changes):
        """Functional update: returns a plain Record (copy-through)."""
        return self.raw.update(
            **{name: unwrap_logging(value) for name, value in changes.items()}
        )

    def __iter__(self):
        for name, value in self.raw:
            yield name, wrap_value(value, self.path + (name,), self.log)


class TrackedFrozenset(_Tracked):
    """Wraps a frozenset; membership is element-granular."""

    __slots__ = ()

    def __contains__(self, item):
        item = unwrap_logging(item)
        present = item in self.raw
        self.log.read(self.path + (("elem", ser(item)),), present)
        return present

    def __len__(self):
        self.log.read(self.path + (("size",),), len(self.raw))
        return len(self.raw)

    def __bool__(self):
        self.log.read(self.path + (("size",),), len(self.raw))
        return bool(self.raw)

    def __iter__(self):
        self._observe()
        return iter(self.raw)

    def __or__(self, other):
        # The result is derived data the handler may branch on or iterate
        # (e.g. "invalidate sharers minus the requestor"), so set algebra
        # observes the whole set.  This costs no independence in practice:
        # only one controller's rules ever touch a given set this way.
        self._observe()
        return self.raw | unwrap_logging(other)

    def __sub__(self, other):
        self._observe()
        return self.raw - unwrap_logging(other)

    def __and__(self, other):
        self._observe()
        return self.raw & unwrap_logging(other)


class TrackedMultiset(_Tracked):
    """Wraps a :class:`~repro.mc.multiset.Multiset` at element granularity."""

    __slots__ = ()

    def __contains__(self, item):
        item = unwrap_logging(item)
        count = self.raw.count(item)
        self.log.read(self.path + (("elem", ser(item)),), count)
        return count > 0

    def count(self, item):
        """Count one element; observes that element's count."""
        item = unwrap_logging(item)
        count = self.raw.count(item)
        self.log.read(self.path + (("elem", ser(item)),), count)
        return count

    def __len__(self):
        self.log.read(self.path + (("size",),), len(self.raw))
        return len(self.raw)

    def __bool__(self):
        self.log.read(self.path + (("size",),), len(self.raw))
        return bool(self.raw)

    def __iter__(self):
        self._observe()
        return iter(self.raw)

    def distinct(self):
        """Iterate distinct elements; scanning observes the whole bag."""
        self._observe()
        return self.raw.distinct()

    def items(self):
        """Iterate (element, count) pairs; observes the whole bag."""
        self._observe()
        return self.raw.items()

    def add(self, item, count: int = 1):
        """Return a plain grown multiset; the growth is a write, not a read."""
        return self.raw.add(unwrap_logging(item), unwrap(count))

    def remove(self, item, count: int = 1):
        """Return a plain shrunk multiset; removal observes presence."""
        item = unwrap_logging(item)
        self.log.read(self.path + (("elem", ser(item)),), self.raw.count(item))
        return self.raw.remove(item, unwrap(count))

    def map(self, fn):
        """Map over elements; observes the whole bag."""
        self._observe()
        return self.raw.map(fn)

    def filter(self, predicate):
        """Filter elements; observes the whole bag."""
        self._observe()
        return self.raw.filter(predicate)


class TrackedProcessArray(_Tracked):
    """Wraps a DSL :class:`~repro.dsl.process.ProcessArray`."""

    __slots__ = ()

    def __getitem__(self, index):
        index = unwrap(index)
        return wrap_value(self.raw[index], self.path + (index,), self.log)

    def __iter__(self):
        for index in range(len(self.raw)):
            yield wrap_value(self.raw[index], self.path + (index,), self.log)

    def __len__(self):
        return len(self.raw)

    def count(self, value):
        """Count matching local states; observes the whole array."""
        self._observe()
        return self.raw.count(unwrap_logging(value))


class TrackedNetwork(_Tracked):
    """Wraps a DSL :class:`~repro.dsl.network.UnorderedNetwork`.

    ``deliverable`` scans record a message-*class* read — precise enough
    that a send to one destination does not conflict with every receive
    rule in the system.
    """

    __slots__ = ()

    def deliverable(self, dst, mtype=None):
        """Scan deliverable messages; records a message-class read."""
        dst = unwrap_logging(dst)
        mtype = unwrap_logging(mtype)
        matching = tuple(self.raw.deliverable(dst, mtype))
        self.log.read(
            self.path + (("eclass", mtype, dst),),
            tuple(ser(message) for message in matching),
        )
        return iter(matching)

    def __contains__(self, message):
        message = unwrap_logging(message)
        present = message in self.raw
        self.log.read(self.path + (("elem", ser(message)),), present)
        return present

    def __len__(self):
        self.log.read(self.path + (("size",),), len(self.raw))
        return len(self.raw)

    def __bool__(self):
        self.log.read(self.path + (("size",),), len(self.raw))
        return bool(self.raw)

    def __iter__(self):
        self._observe()
        return iter(self.raw)

    def send(self, message):
        """Return a plain grown network (a write; embedded reads logged)."""
        return self.raw.send(unwrap_logging(message))

    def deliver(self, message):
        """Return a plain shrunk network; delivery observes presence."""
        message = unwrap_logging(message)
        self.log.read(self.path + (("elem", ser(message)),), message in self.raw)
        return self.raw.deliver(message)

    def renamed(self, mapping):
        """Rename process ids; observes the whole network."""
        self._observe()
        return self.raw.renamed(mapping)


def wrap_value(value: Any, path: Location, log: AccessLog) -> Any:
    """Wrap one state component in the matching tracked proxy.

    ``None`` passes through unwrapped so that identity tests
    (``x is None``) keep their meaning; unknown container types are
    returned raw after recording a whole-subtree read (conservative).
    """
    if value is None:
        return None
    if isinstance(value, Record):
        return TrackedRecord(value, path, log)
    if isinstance(value, Multiset):
        return TrackedMultiset(value, path, log)
    if isinstance(value, tuple):
        return TrackedTuple(value, path, log)
    if isinstance(value, frozenset):
        return TrackedFrozenset(value, path, log)
    if ProcessArray is not None and isinstance(value, ProcessArray):
        return TrackedProcessArray(value, path, log)
    if UnorderedNetwork is not None and isinstance(value, UnorderedNetwork):
        return TrackedNetwork(value, path, log)
    if isinstance(value, (int, str)):  # bool is an int subclass
        return TrackedLeaf(value, path, log)
    log.read(path)
    return value


def wrap_state(state: Any, log: AccessLog) -> Any:
    """Wrap a root state (conventionally a tuple) for instrumented replay."""
    return wrap_value(state, (), log)


def unwrap(value: Any) -> Any:
    """Strip a tracked wrapper without recording a read."""
    return value.raw if isinstance(value, _Tracked) else value


def unwrap_logging(value: Any) -> Any:
    """Strip wrappers, recording reads for embedded tracked leaves.

    Used at API boundaries where a state-derived value flows into rule
    output (a message destination, a set member): that flow is a genuine
    read even though the value was never compared.
    """
    if isinstance(value, _Tracked):
        value._observe()
        return value.raw
    if isinstance(value, tuple):
        return tuple(unwrap_logging(item) for item in value)
    if Message is not None and isinstance(value, Message):
        return Message(
            unwrap_logging(value.mtype),
            unwrap_logging(value.src),
            unwrap_logging(value.dst),
            unwrap_logging(value.payload),
        )
    return value


def find_flows(value: Any, path: Location, reads: Set[Location]) -> None:
    """Record reads for tracked leaves embedded in a firing's successor.

    A leaf that ends up at a *different* location than it came from is a
    data flow (``owner := req``); a leaf copied back to its own location
    is a no-op copy-through and records nothing.
    """
    if isinstance(value, _Tracked):
        if value.path != path:
            reads.add(value.path)
        return
    if isinstance(value, tuple):
        for index, item in enumerate(value):
            find_flows(item, path + (index,), reads)
        return
    if isinstance(value, Record):
        for name, item in value:
            find_flows(item, path + (name,), reads)


# -- structural diff (write footprints) --------------------------------------


def diff_states(before: Any, after: Any) -> Dict[Location, str]:
    """Structurally diff two plain states into a write footprint."""
    writes: Dict[Location, str] = {}
    _diff(before, after, (), writes)
    return writes


def _merge_write(writes: Dict[Location, str], loc: Location, kind: str) -> None:
    existing = writes.get(loc)
    if existing is not None and existing != kind:
        kind = "set"  # mixed kinds at one location: strongest wins
    writes[loc] = kind


def _diff(before: Any, after: Any, path: Location,
          writes: Dict[Location, str]) -> None:
    if before is after or before == after:
        return
    if isinstance(before, Record) and isinstance(after, Record):
        fields_a, fields_b = dict(before), dict(after)
        for name in set(fields_a) | set(fields_b):
            _diff(fields_a.get(name), fields_b.get(name), path + (name,), writes)
        return
    if isinstance(before, Multiset) and isinstance(after, Multiset):
        # Size changes are implied by element-count changes and are NOT
        # recorded as writes: a size *read* already conflicts with any
        # element write (see _markers_conflict), and two element deltas
        # commute including their size effects.
        counts_a, counts_b = dict(before.items()), dict(after.items())
        for key in set(counts_a) | set(counts_b):
            if counts_a.get(key, 0) != counts_b.get(key, 0):
                _merge_write(writes, path + (("elem", ser(key)),), "delta")
        return
    if (
        UnorderedNetwork is not None
        and isinstance(before, UnorderedNetwork)
        and isinstance(after, UnorderedNetwork)
    ):
        # Compare the underlying bags directly: rebuilding Multisets from
        # message iterables re-sorts by repr on every diff, which was the
        # single hottest line of skeleton probes.
        _diff(before._bag, after._bag, path, writes)
        return
    if isinstance(before, frozenset) and isinstance(after, frozenset):
        for member in before - after:
            _merge_write(writes, path + (("elem", ser(member)),), "remove")
        for member in after - before:
            _merge_write(writes, path + (("elem", ser(member)),), "add")
        return
    if isinstance(before, tuple) and isinstance(after, tuple):
        if len(before) != len(after):
            _merge_write(writes, path, "set")
            return
        for index, (item_a, item_b) in enumerate(zip(before, after)):
            _diff(item_a, item_b, path + (index,), writes)
        return
    if (
        ProcessArray is not None
        and isinstance(before, ProcessArray)
        and isinstance(after, ProcessArray)
    ):
        _diff(tuple(before), tuple(after), path, writes)
        return
    _merge_write(writes, path, "set")


# -- the analysis ------------------------------------------------------------


@dataclass
class RuleFootprint:
    """Everything the probe learned about one rule."""

    #: locations the guard observed (union over probed evaluations)
    guard_reads: Set[Location] = field(default_factory=set)
    #: locations the body observed while firing (union over probed firings)
    reads: Set[Location] = field(default_factory=set)
    #: location -> write kind, from successor diffs (union over firings)
    writes: Dict[Location, str] = field(default_factory=dict)
    #: names of holes this rule resolves (union over firings)
    holes: Set[str] = field(default_factory=set)
    #: number of successfully probed firings
    fired: int = 0
    #: the probe ever saw this rule's guard true (a complete probe with
    #: ``ever_enabled`` False proves the rule dead on the reachable space)
    ever_enabled: bool = False
    #: number of instrumented guard evaluations performed
    guard_tracked: int = 0
    #: the guard's atom structure: the ordered locations its short-circuit
    #: evaluation reads (longest observed sequence); position ``i`` holds
    #: the location of conjunct ``i``
    atoms: List[Location] = field(default_factory=list)
    #: per atom position, observed value -> whether evaluation continued
    #: past it (True) or stopped returning False (False); a value observed
    #: with both outcomes marks the position indeterminate (dropped)
    atom_truth: List[Dict[Any, Optional[bool]]] = field(default_factory=list)
    #: the guard's read order varied across states; atom analysis is off
    atoms_unstable: bool = False
    #: (firing state, written locations) per probed firing — the raw
    #: material write-condition learning digests after the probe
    history: List[Tuple[Any, frozenset]] = field(default_factory=list)
    #: written location -> (predictor location, value -> wrote) for writes
    #: that only happen under a state condition (e.g. an invalidation is
    #: sent to cache i only while i is a sharer); absent = unconditional
    write_conditions: Dict[Location, Tuple[Location, Dict[Any, bool]]] = field(
        default_factory=dict
    )
    #: an instrumented replay failed; treat the rule as touching everything
    unknown: bool = False
    #: bitmask over property indices (invariants then coverage, in system
    #: order) whose truth value some probed firing changed
    visible_props: int = 0

    @property
    def all_reads(self) -> Set[Location]:
        """Guard and body reads together (the independence read set)."""
        return self.guard_reads | self.reads


def value_at(state: Any, location: Location) -> Any:
    """The observable value a tracked read of ``location`` would record.

    Mirrors the wrapper classes' value conventions: leaf locations yield
    the raw value, ``elem`` markers yield the element count (multisets,
    networks) or presence (frozensets), ``size`` yields the length, and
    ``eclass`` yields the serialised tuple of matching messages.  Raises
    on structural mismatch; callers treat that as "undeterminable".
    """
    current = state
    for segment in location:
        if isinstance(segment, tuple):
            kind = segment[0]
            if UnorderedNetwork is not None and isinstance(
                current, UnorderedNetwork
            ):
                if kind == "eclass":
                    return tuple(
                        ser(m) for m in current.deliverable(segment[2], segment[1])
                    )
                bag = current._bag
            elif isinstance(current, Multiset):
                bag = current
            elif isinstance(current, frozenset):
                if kind == "elem":
                    return any(ser(member) == segment[1] for member in current)
                if kind == "size":
                    return len(current)
                raise KeyError(segment)
            else:
                raise KeyError(segment)
            if kind == "size":
                return len(bag)
            if kind == "elem":
                return sum(
                    count for item, count in bag.items()
                    if ser(item) == segment[1]
                )
            raise KeyError(segment)
        if isinstance(segment, str):
            current = getattr(current, segment)
        else:
            current = current[segment]
    return current


class _ProbeResolver:
    """Replays a firing under a scripted hole-action assignment."""

    def __init__(self, footprint: RuleFootprint) -> None:
        self.footprint = footprint
        self.script: List[int] = []
        self.arities: List[int] = []
        self.cursor = 0
        self.holes_seen: List[Any] = []

    def restart(self) -> None:
        """Rewind for the next firing of the same combination."""
        self.cursor = 0
        self.holes_seen = []

    def advance(self) -> bool:
        """Odometer-step the script; False when all combinations are done."""
        for position in range(len(self.script) - 1, -1, -1):
            self.script[position] += 1
            if self.script[position] < self.arities[position]:
                del self.script[position + 1:]
                del self.arities[position + 1:]
                return True
            self.script[position] = 0
        return False

    def resolve(self, hole: Any) -> Any:
        """Return the scripted action for the next hole in this firing."""
        self.footprint.holes.add(hole.name)
        position = self.cursor
        self.cursor += 1
        self.holes_seen.append(hole)
        if position >= len(self.script):
            self.script.append(0)
            self.arities.append(hole.arity)
        return hole.domain[self.script[position]]


class FootprintAnalysis:
    """Per-system POR relations, plus the ample-set selector.

    Built once per :class:`~repro.mc.system.TransitionSystem` (see
    :func:`get_footprint_analysis`) and shared by every kernel run of that
    system, including all candidate evaluations of one synthesis run.

    Attributes:
        footprints: one :class:`RuleFootprint` per rule, in rule order.
        dependent: per rule, a bitmask of statically dependent rules
            (footprint conflict; symmetric; includes self).
        guard_writers: per rule ``q``, the fallback necessary-enabling
            set: rules whose writes conflict with ``q``'s guard reads.
        always_visible_mask: rules that may change an *invariant* truth
            value (or whose replay failed) — never reducible.  Rules that
            can only change a coverage predicate are visible exactly while
            that predicate is still pending: once a witness state is
            visited the predicate is satisfied forever (coverage is
            existential and monotone), so its visibility constraint drops
            away — see :meth:`visible_mask_for`.
        complete: the probe drained its frontier without hitting the state
            cap, the combination cap, or a replay failure — the observed
            relations are exact over the reachable space.
        usable: POR may be applied at all (no guard resolved a hole).
        probe_states: states the probe visited.
    """

    def __init__(self, system: Any, probe_limit: int, combo_limit: int) -> None:
        self.system = system
        self.rule_count = len(system.rules)
        self.footprints: List[RuleFootprint] = [
            RuleFootprint() for _ in system.rules
        ]
        self.dependent: List[int] = [0] * self.rule_count
        self.guard_writers: List[int] = [0] * self.rule_count
        self.invariant_count = len(system.invariants)
        #: coverage property name -> property index (after the invariants)
        self.coverage_index: Dict[str, int] = {
            prop.name: self.invariant_count + offset
            for offset, prop in enumerate(system.coverage)
        }
        self.always_visible_mask = 0
        self.complete = False
        self.usable = True
        self.probe_states = 0
        self._writer_cache: Dict[Location, int] = {}
        self._visible_cache: Dict[Any, int] = {}
        self._evidence_cache: Dict[Tuple[int, int], Any] = {}
        self._seed_order: List[int] = []
        #: enabled-rule masks whose ample search already failed once.
        #: Falling back to full expansion is always sound, so rejections
        #: are memoised by mask alone even though a different state with
        #: the same mask might have admitted a reduction — the memo is
        #: what keeps the per-state selector off the hot path on systems
        #: (or synthesis phases) where reduction rarely applies.
        self._ample_reject: Set[int] = set()
        self._probe(probe_limit, combo_limit)
        if self.usable:
            self._derive_relations()
            self._seed_order = list(range(self.rule_count))

    # -- probing ------------------------------------------------------------

    def _properties(self) -> List[Any]:
        checks = [inv.holds for inv in self.system.invariants]
        checks.extend(prop.satisfied_by for prop in self.system.coverage)
        return checks

    def _probe(self, probe_limit: int, combo_limit: int) -> None:
        """Bounded full-expansion exploration driving all replay sampling.

        The probe deliberately ignores the system's symmetry reduction and
        walks the *raw* state graph: observed relations (visibility,
        enabling edges) are then permutation-closed by construction, which
        a reduced exploration needs because the orbit representatives it
        visits depend on discovery order.
        """
        system = self.system
        rules = system.rules
        checks = self._properties()

        enabled_cache: Dict[Any, int] = {}
        profile_cache: Dict[Any, Tuple[bool, ...]] = {}

        def enabled_mask_of(state: Any) -> int:
            mask = enabled_cache.get(state)
            if mask is None:
                mask = 0
                for index, rule in enumerate(rules):
                    try:
                        if rule.guard(state):
                            mask |= 1 << index
                    except Exception:
                        self.footprints[index].unknown = True
                enabled_cache[state] = mask
            return mask

        def profile_of(state: Any) -> Tuple[bool, ...]:
            profile = profile_cache.get(state)
            if profile is None:
                profile = tuple(bool(check(state)) for check in checks)
                profile_cache[state] = profile
            return profile

        try:
            initial = list(system.initial_states())
        except Exception:
            self.usable = False
            return

        visited: Set[Any] = set()
        frontier: deque = deque()
        for state in initial:
            if state not in visited:
                visited.add(state)
                frontier.append(state)

        all_true = tuple([True] * self.invariant_count)
        truncated = False
        popped = 0
        while frontier:
            if len(visited) >= probe_limit:
                truncated = True
                break
            state = frontier.popleft()
            profile = profile_of(state)
            expand = profile[: self.invariant_count] == all_true
            # Invariant-violating states are terminal in *every*
            # candidate's exploration (the kernel returns FAILURE on
            # generating them), so the probe never expands them — that is
            # what keeps the union space of a skeleton finite (faulty
            # completions' message sprays die at the network bound).  But
            # their rules ARE fired one step, without enqueuing the
            # successors: a rule that flips a property value only at the
            # violation boundary (e.g. one that retires the second writer
            # SWMR just complained about) must still count as visible, or
            # a reduced exploration could defer its way around the
            # violating interleaving.
            popped += 1
            mask = enabled_mask_of(state)
            for index, rule in enumerate(rules):
                fp = self.footprints[index]
                if (
                    not fp.unknown
                    and fp.guard_tracked < TRACKED_GUARD_LIMIT
                    and (
                        popped <= TRACKED_GUARD_WARMUP
                        or (popped + index) % TRACKED_GUARD_STRIDE == 0
                        or self._guard_informative(fp, state)
                    )
                ):
                    self._track_guard(rule, fp, state)
                if not (mask >> index) & 1:
                    continue
                fp.ever_enabled = True
                truncated |= not self._probe_firings(
                    rule, fp, state, profile,
                    combo_limit, visited, frontier, profile_of, expand,
                )
        self.probe_states = len(visited)
        self.complete = not truncated and not any(
            fp.unknown for fp in self.footprints
        )
        self._derive_write_conditions()

    def _derive_write_conditions(self) -> None:
        """Learn, per (rule, written location), when the write happens.

        A location missing from some firings' write sets is *conditional*.
        The learner searches the rule's read locations (and their element
        refinements) for a predictor whose observed value functionally
        determines whether the location is written, and keeps the
        consistent predictor with the fewest writers of its own — the
        cost :meth:`necessary_enablers` pays when it excludes the rule.
        No consistent predictor means the write stays unconditional
        (conservative).
        """
        for fp in self.footprints:
            if fp.unknown or len(fp.history) < 2:
                fp.history = []
                continue
            union_locs = set().union(*(locs for _s, locs in fp.history))
            conditional = [
                loc for loc in union_locs
                if any(loc not in locs for _s, locs in fp.history)
            ]
            if not conditional:
                fp.history = []
                continue
            candidates = self._predictor_candidates(fp)
            for loc in conditional:
                best = None
                best_writers = 0
                for candidate in candidates:
                    table: Dict[Any, bool] = {}
                    consistent = True
                    for state, locs in fp.history:
                        try:
                            value = value_at(state, candidate)
                            wrote = loc in locs
                            if table.setdefault(value, wrote) != wrote:
                                consistent = False
                                break
                        except Exception:
                            consistent = False
                            break
                    if not consistent:
                        continue
                    writer_count = bin(self._writers_of(candidate)).count("1")
                    if best is None or writer_count < best_writers:
                        best, best_writers = (candidate, table), writer_count
                if best is not None:
                    fp.write_conditions[loc] = best
            fp.history = []

    def _predictor_candidates(self, fp: RuleFootprint) -> List[Location]:
        """Predictor locations to try: the rule's reads, plus element
        refinements of whole-container reads (a sharer-set iteration reads
        the whole set, but the useful predictor is one membership bit)."""
        candidates = list(fp.guard_reads | fp.reads)
        sample_state = fp.history[0][0]
        for location in list(candidates):
            if location and isinstance(location[-1], tuple):
                continue  # already element-granular
            try:
                value = value_at(sample_state, location)
            except Exception:
                continue
            if isinstance(value, (frozenset, Multiset)):
                elements = set()
                for state, _locs in fp.history:
                    try:
                        container = value_at(state, location)
                    except Exception:
                        continue
                    for member in container:
                        elements.add(ser(member))
                        if len(elements) >= 8:
                            break
                    if len(elements) >= 8:
                        break
                candidates.extend(
                    location + (("elem", element),) for element in elements
                )
        return candidates

    @staticmethod
    def _guard_informative(fp: RuleFootprint, state: Any) -> bool:
        """Whether tracking this guard here can teach the atom tables
        anything new: its evaluation would get past the first atom while
        some later atom's value is unseen (or known only as True).

        The atom truth tables drive per-state necessary-enabling-set
        choices, and their useful entries are exactly the *false* ones —
        warmup/stride sampling alone tends to miss the deeper atoms of
        rules whose first conjunct is rarely true.
        """
        if not fp.atoms or fp.atoms_unstable:
            return False
        for position, location in enumerate(fp.atoms):
            table = fp.atom_truth[position]
            try:
                value = value_at(state, location)
                if value not in table:
                    return True  # an unseen value would gain a table entry
                truth = table[value]
            except Exception:
                return False
            if truth is False:
                return False  # evaluation stops here; nothing new deeper
        return False

    def _track_guard(self, rule: Any, fp: RuleFootprint, state: Any) -> None:
        """One instrumented guard evaluation, validated against the plain one.

        Guards receive only the state (never the execution context), so a
        guard can never resolve a synthesis hole — which is what keeps
        enabled sets, and therefore ample decisions, identical across all
        candidates of one skeleton.  A wrapper-fidelity mismatch (the
        tracked evaluation disagreeing with the plain one) marks the rule
        unknown, which excludes it — conservatively — from all reduction.
        """
        fp.guard_tracked += 1
        log = AccessLog()
        tracked = wrap_state(state, log)
        try:
            tracked_result = bool(rule.guard(tracked))
            plain_result = bool(rule.guard(state))
        except Exception:
            fp.unknown = True
            return
        if tracked_result != plain_result:
            fp.unknown = True
            return
        fp.guard_reads |= log.reads
        self._learn_atoms(fp, log.seq, tracked_result)

    @staticmethod
    def _learn_atoms(fp: RuleFootprint, seq, result: bool) -> None:
        """Fold one guard evaluation's read sequence into the atom tables.

        A short-circuit conjunction reads its atoms in a fixed order, one
        location per atom in this codebase; the observed sequence is then
        always a prefix of the full atom list.  Every read before the last
        of a False evaluation witnessed its atom *true* for the observed
        value; the final read witnessed its atom *false*.  A value seen
        with both outcomes at one position — a multi-location atom, or a
        guard whose read order shifts — poisons that position (``None``),
        and a sequence that contradicts the learned location order marks
        the whole rule's atoms unstable.
        """
        if fp.atoms_unstable:
            return
        for position, (location, value) in enumerate(seq):
            if position == len(fp.atoms):
                fp.atoms.append(location)
                fp.atom_truth.append({})
            elif fp.atoms[position] != location:
                fp.atoms_unstable = True
                return
            truth = result or position < len(seq) - 1
            table = fp.atom_truth[position]
            try:
                known = table.get(value, truth)
            except TypeError:  # unhashable observed value
                fp.atoms_unstable = True
                return
            table[value] = truth if known == truth else None

    def _probe_firings(
        self, rule, fp, state, profile,
        combo_limit, visited, frontier, profile_of, expand=True,
    ) -> bool:
        """Fire one enabled rule at one state over all hole combinations.

        Returns False when the combination cap was hit (probe incomplete).
        """
        resolver = _ProbeResolver(fp)
        combos = 0
        while True:
            combos += 1
            if combos > combo_limit:
                return False
            resolver.restart()
            ctx = ExecutionContext(resolver)
            try:
                successors = rule.fire(state, ctx)
            except Exception:
                fp.unknown = True
                return False
            if fp.fired < TRACKED_FIRE_LIMIT:
                self._track_firing(rule, fp, state, resolver.script)
            fp.fired += 1
            fired_locs = set()
            for successor in successors:
                for loc, kind in diff_states(state, successor).items():
                    _merge_write(fp.writes, loc, kind)
                    fired_locs.add(loc)
                succ_profile = profile_of(successor)
                if succ_profile != profile:
                    for prop, (was, now) in enumerate(zip(profile, succ_profile)):
                        if was != now:
                            fp.visible_props |= 1 << prop
                if expand and successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
            fp.history.append((state, frozenset(fired_locs)))
            if not resolver.advance():
                return True

    def _track_firing(self, rule, fp, state, script) -> None:
        """One instrumented firing: body reads plus successor data flows."""
        log = AccessLog()
        replay = _ProbeResolver(RuleFootprint())
        replay.script = list(script)
        replay.arities = [1] * len(script)  # advance() is never called here
        ctx = ExecutionContext(replay)
        tracked = wrap_state(state, log)
        try:
            successors = rule.fire(tracked, ctx)
        except Exception:
            fp.unknown = True
            return
        log.active = False
        flows: Set[Location] = set()
        for successor in successors:
            find_flows(successor, (), flows)
        fp.reads |= log.reads | flows

    # -- derived relations --------------------------------------------------

    def _derive_relations(self) -> None:
        """Turn per-rule footprints into bitmask adjacency relations."""
        count = self.rule_count
        fps = self.footprints
        all_mask = (1 << count) - 1
        all_props = (1 << (self.invariant_count + len(self.coverage_index))) - 1
        invariant_props = (1 << self.invariant_count) - 1
        for i in range(count):
            if fps[i].unknown or fps[i].fired == 0:
                fps[i].visible_props = all_props
            if fps[i].visible_props & invariant_props:
                self.always_visible_mask |= 1 << i
        for i in range(count):
            if fps[i].unknown:
                self.dependent[i] = all_mask
                self.guard_writers[i] = all_mask
                for j in range(count):
                    self.dependent[j] |= 1 << i
                continue
            self.dependent[i] |= 1 << i
            for j in range(i + 1, count):
                if fps[j].unknown:
                    continue
                if self._conflict(fps[i], fps[j]):
                    self.dependent[i] |= 1 << j
                    self.dependent[j] |= 1 << i
        for q in range(count):
            if fps[q].unknown:
                continue
            writers = 0
            for r in range(count):
                if fps[r].unknown:
                    writers |= 1 << r
                elif read_write_conflict(fps[q].guard_reads, fps[r].writes):
                    writers |= 1 << r
            self.guard_writers[q] = writers

    @staticmethod
    def _conflict(a: RuleFootprint, b: RuleFootprint) -> bool:
        return (
            writes_conflict(a.writes, b.writes)
            or read_write_conflict(a.all_reads, b.writes)
            or read_write_conflict(b.all_reads, a.writes)
        )

    def _conflict_evidence(
        self, i: int, j: int
    ) -> Optional[List[Tuple[int, Location]]]:
        """Why rules ``i`` and ``j`` are dependent, as refutable witnesses.

        Each witness is ``(writer rule, written location)`` for one
        conflicting access pair; the pair is inactive at a state where the
        write's learned condition is provably false.  ``None`` means some
        conflict has no conditional write to refute (the dependence is
        unconditional).
        """
        key = (i, j) if i <= j else (j, i)
        cached = self._evidence_cache.get(key, False)
        if cached is not False:
            return cached
        evidence: Optional[List[Tuple[int, Location]]] = []
        fa, fb = self.footprints[key[0]], self.footprints[key[1]]

        def witness(pairs) -> None:
            nonlocal evidence
            for owner, write_loc, conditional in pairs:
                if evidence is None:
                    return
                if conditional:
                    evidence.append((owner, write_loc))
                else:
                    evidence = None

        for loc_a, kind_a in fa.writes.items():
            for loc_b, kind_b in fb.writes.items():
                if (kind_a, kind_b) in _COMMUTING:
                    continue
                if not locations_conflict(loc_a, loc_b):
                    continue
                if loc_a in fa.write_conditions:
                    witness([(key[0], loc_a, True)])
                elif loc_b in fb.write_conditions:
                    witness([(key[1], loc_b, True)])
                else:
                    witness([(key[0], loc_a, False)])
        for reads, writer_idx, writer in (
            (fa.all_reads, key[1], fb),
            (fb.all_reads, key[0], fa),
        ):
            for write_loc in writer.writes:
                for read_loc in reads:
                    if locations_conflict(read_loc, write_loc):
                        witness([
                            (writer_idx, write_loc,
                             write_loc in writer.write_conditions)
                        ])
                        break
        self._evidence_cache[key] = evidence
        return evidence

    def refined_dependents(
        self, rule_index: int, state: Any, closure: int, enabled_mask: int,
        prefer_alternative: bool = False,
    ) -> int:
        """State-refined dependents of an enabled closure member.

        A statically dependent rule whose every conflict witness is a
        conditional write provably inactive at ``state`` may be replaced
        by the writers of the witnesses' predictor locations (those must
        change before the conflict can materialise) — when that is
        cheaper for the closure than keeping the dependent rule.
        """
        base = self.dependent[rule_index]
        if self.footprints[rule_index].unknown:
            return base
        result = 0
        remaining = base
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            other = low.bit_length() - 1
            if other == rule_index or self.footprints[other].unknown:
                result |= low
                continue
            evidence = self._conflict_evidence(rule_index, other)
            if evidence is None or not evidence:
                result |= low
                continue
            alternative = 0
            refuted = True
            for owner, write_loc in evidence:
                condition = self.footprints[owner].write_conditions.get(write_loc)
                if condition is None:
                    refuted = False
                    break
                predictor, table = condition
                try:
                    wrote = table.get(value_at(state, predictor), True)
                except Exception:
                    refuted = False
                    break
                if wrote is not False:
                    refuted = False
                    break
                alternative |= self._writers_of(predictor)
            if not refuted:
                result |= low
                continue
            new_self = low & ~closure
            new_alt = alternative & ~closure
            cost_self = 1000 * bin(new_self & enabled_mask).count("1") + bin(
                new_self
            ).count("1")
            cost_alt = 1000 * bin(new_alt & enabled_mask).count("1") + bin(
                new_alt
            ).count("1")
            result |= alternative if cost_alt < cost_self else low
        return result

    # -- ample selection ----------------------------------------------------

    def _writers_of(self, location: Location) -> int:
        """Bitmask of rules with a write conflicting one location (cached)."""
        writers = self._writer_cache.get(location)
        if writers is None:
            writers = 0
            for index, fp in enumerate(self.footprints):
                if fp.unknown or read_write_conflict({location}, fp.writes):
                    writers |= 1 << index
            self._writer_cache[location] = writers
        return writers

    def _refined_writers(
        self, location: Location, state: Any, closure: int, enabled_mask: int,
        prefer_alternative: bool = False,
    ) -> int:
        """State-refined writer set: conditional writers whose learned
        write condition is provably false at ``state`` are replaced by the
        writers of their predictor location (the condition must change
        before they can touch ``location``) — unless keeping the writer
        itself is cheaper for the closure.
        """
        base = self._writers_of(location)
        result = 0
        remaining = base
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            index = low.bit_length() - 1
            fp = self.footprints[index]
            if fp.unknown or not fp.write_conditions:
                result |= low
                continue
            alternative = 0
            excludable = True
            for write_loc in fp.writes:
                if not locations_conflict(write_loc, location):
                    continue
                condition = fp.write_conditions.get(write_loc)
                if condition is None:
                    excludable = False
                    break
                predictor, table = condition
                try:
                    wrote = table.get(value_at(state, predictor), True)
                except Exception:
                    excludable = False
                    break
                if wrote is not False:
                    excludable = False
                    break
                alternative |= self._writers_of(predictor)
            if not excludable:
                result |= low
                continue
            result |= self._pick_alternative(
                low, alternative, closure, enabled_mask, prefer_alternative
            )
        return result

    @staticmethod
    def _pick_alternative(
        keep: int, alternative: int, closure: int, enabled_mask: int,
        prefer_alternative: bool,
    ) -> int:
        """Keep a refutable rule or swap in its predictor writers.

        Both choices are sound; the greedy cost (enabled additions weigh
        heavily) is right most of the time, but a kept rule's own enabling
        chain can be the expensive path — the closure therefore runs once
        greedily and once preferring the alternative, and uses whichever
        yields a proper ample set.
        """
        if prefer_alternative:
            return alternative
        new_keep = keep & ~closure
        new_alt = alternative & ~closure
        cost_keep = 1000 * bin(new_keep & enabled_mask).count("1") + bin(
            new_keep
        ).count("1")
        cost_alt = 1000 * bin(new_alt & enabled_mask).count("1") + bin(
            new_alt
        ).count("1")
        return alternative if cost_alt < cost_keep else keep

    def necessary_enablers(
        self, rule_index: int, state: Any, closure: int = 0,
        enabled_mask: int = 0, prefer_alternative: bool = False,
    ) -> int:
        """A necessary enabling set for a rule disabled at ``state``.

        Any path on which the rule becomes enabled must first make every
        currently-false guard atom true, and a single-location atom can
        only change truth when its location is written — so the writers of
        *any one* provably-false atom form a sound NES.  Among the provably
        false atoms, the one contributing fewest rules *not already in the
        growing closure* is chosen (a cache rule's own-state atom is free
        once its writers are in; a message-key atom costs only its few
        senders); when no atom's falsity can be established from the
        learned truth tables, the fallback is the writers of the guard's
        whole read set.
        """
        fp = self.footprints[rule_index]
        if self.complete and not fp.ever_enabled:
            # Dead rule: a complete probe proves it is never enabled at
            # any reachable state, so nothing can ever fire it and no
            # enabling set is needed at all.
            return 0
        if fp.unknown or fp.atoms_unstable:
            return self.guard_writers[rule_index]
        best: Optional[int] = None
        best_cost = 0
        for position, location in enumerate(fp.atoms):
            try:
                value = value_at(state, location)
                truth = fp.atom_truth[position].get(value, True)
            except Exception:
                continue
            if truth is not False:
                continue
            writers = self._refined_writers(
                location, state, closure, enabled_mask, prefer_alternative
            )
            new = writers & ~closure
            cost = 1000 * bin(new & enabled_mask).count("1") + bin(new).count("1")
            if best is None or cost < best_cost:
                best, best_cost = writers, cost
                if cost == 0:
                    break
        if best is None:
            return self.guard_writers[rule_index]
        return best

    def visible_mask_for(self, pending_coverage) -> int:
        """Rules visible while the given coverage names are still pending.

        Invariant-visibility always applies; a coverage predicate's
        visibility applies only until some visited state witnesses it.
        """
        key = frozenset(pending_coverage)
        cached = self._visible_cache.get(key)
        if cached is None:
            props = (1 << self.invariant_count) - 1
            for name in key:
                index = self.coverage_index.get(name)
                if index is not None:
                    props |= 1 << index
            cached = 0
            for index, fp in enumerate(self.footprints):
                if fp.visible_props & props:
                    cached |= 1 << index
            self._visible_cache[key] = cached
        return cached

    def ample(
        self, enabled_mask: int, state: Any, visible_mask: int
    ) -> Optional[Tuple[int, ...]]:
        """A proper, invisible, persistent subset of the enabled rules.

        Returns rule indices to expand (ascending), or ``None`` when the
        state must be fully expanded.  ``visible_mask`` is the caller's
        current :meth:`visible_mask_for` value.  For a skeleton the
        decision is candidate-independent: guards cannot resolve holes, so
        the enabled set — and everything derived from it — is the same for
        every completion.
        """
        if enabled_mask in self._ample_reject:
            return None
        best: Optional[int] = None
        best_size = 0
        for seed in self._seed_order:
            if not (enabled_mask >> seed) & 1 or (visible_mask >> seed) & 1:
                continue
            for prefer_alternative in (False, True):
                closure = self._closure(
                    seed, enabled_mask, state, prefer_alternative
                )
                ample_mask = closure & enabled_mask
                if ample_mask == enabled_mask:
                    continue
                if ample_mask & visible_mask:
                    continue  # C2: a proper ample set must be invisible
                size = bin(ample_mask).count("1")
                if best is None or size < best_size:
                    best, best_size = ample_mask, size
            if best is not None and best_size == 1:
                break
        if best is None:
            self._ample_reject.add(enabled_mask)
            return None
        indices = []
        mask = best
        while mask:
            low = mask & -mask
            indices.append(low.bit_length() - 1)
            mask ^= low
        return tuple(indices)

    def _closure(
        self, seed: int, enabled_mask: int, state: Any,
        prefer_alternative: bool = False,
    ) -> int:
        """Stubborn-set closure: dependents of enabled members, necessary
        enablers of disabled members."""
        closure = 1 << seed
        work = [seed]
        while work:
            rule = work.pop()
            if (enabled_mask >> rule) & 1:
                additions = self.refined_dependents(
                    rule, state, closure, enabled_mask, prefer_alternative
                ) & ~closure
            else:
                additions = self.necessary_enablers(
                    rule, state, closure, enabled_mask, prefer_alternative
                ) & ~closure
            while additions:
                low = additions & -additions
                additions ^= low
                index = low.bit_length() - 1
                closure |= low
                work.append(index)
        return closure


def get_footprint_analysis(
    system: Any,
    probe_limit: int = DEFAULT_PROBE_LIMIT,
    combo_limit: int = DEFAULT_COMBO_LIMIT,
) -> FootprintAnalysis:
    """The (cached) footprint analysis of one system.

    The analysis is deterministic, so the benign race of two threads
    computing it concurrently resolves to identical values; the attribute
    write is atomic under the GIL.
    """
    cached = getattr(system, "_footprint_analysis", None)
    if cached is None:
        cached = FootprintAnalysis(system, probe_limit, combo_limit)
        system._footprint_analysis = cached
    return cached
