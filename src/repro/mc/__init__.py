"""Explicit-state model checking substrate (the paper's embedded checker).

This subpackage implements the Murphi-like modelling and verification layer
that VerC3 embeds: guarded-command transition systems over immutable
states, one unified exploration kernel (:mod:`repro.mc.kernel`)
parameterised by a frontier strategy — FIFO/"bfs" for minimal error
traces, LIFO/"dfs" as the ablation — with resumable prefix checkpoints,
scalarset symmetry reduction with a cached canonicaliser, and three-valued
verdicts (SUCCESS / FAILURE / UNKNOWN) so the synthesis layer can reason
about candidates containing wildcard holes.
"""

from repro.mc.bfs import BfsExplorer
from repro.mc.context import ExecutionContext, FixedResolver, NullResolver
from repro.mc.dfs import DfsExplorer
from repro.mc.kernel import (
    EXPLORER_STRATEGIES,
    ExplorationKernel,
    ExplorationLimits,
    FifoFrontier,
    FrontierStrategy,
    LifoFrontier,
    make_explorer,
)
from repro.mc.multiset import Multiset
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.result import Verdict, VerificationResult
from repro.mc.rule import Rule, RuleInstance, ruleset
from repro.mc.symmetry import (
    CachingCanonicalizer,
    CanonicalizingSystem,
    Permuter,
    ScalarSet,
)
from repro.mc.system import TransitionSystem
from repro.mc.trace import Trace, TraceStep

__all__ = [
    "BfsExplorer",
    "CachingCanonicalizer",
    "CanonicalizingSystem",
    "CoverageProperty",
    "DeadlockPolicy",
    "DfsExplorer",
    "EXPLORER_STRATEGIES",
    "ExecutionContext",
    "ExplorationKernel",
    "ExplorationLimits",
    "FifoFrontier",
    "FixedResolver",
    "FrontierStrategy",
    "Invariant",
    "LifoFrontier",
    "Multiset",
    "NullResolver",
    "Permuter",
    "Rule",
    "RuleInstance",
    "ScalarSet",
    "Trace",
    "TraceStep",
    "TransitionSystem",
    "Verdict",
    "VerificationResult",
    "make_explorer",
    "ruleset",
]
