"""An immutable, hashable multiset.

Unordered interconnects are the reason coherence protocols need transient
states (paper, Section III): messages in flight form a *bag*, not a queue.
:class:`Multiset` models such a bag as a canonically sorted tuple of
``(element, count)`` pairs, so two network states with the same messages in
flight are equal and hash equal regardless of insertion order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple, TypeVar

T = TypeVar("T")


class Multiset:
    """Immutable multiset with value semantics.

    Elements must be hashable and mutually orderable after keying (we sort by
    ``repr`` as a total-order fallback so heterogeneous elements still
    canonicalise deterministically).
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[T] = ()) -> None:
        counts: Dict[T, int] = {}
        for item in items:
            counts[item] = counts.get(item, 0) + 1
        self._items: Tuple[Tuple[T, int], ...] = tuple(
            sorted(counts.items(), key=lambda pair: repr(pair[0]))
        )
        self._hash = hash(self._items)

    @classmethod
    def _from_sorted(cls, items: Tuple[Tuple[T, int], ...]) -> "Multiset":
        new = cls.__new__(cls)
        new._items = items
        new._hash = hash(items)
        return new

    def add(self, item: T, count: int = 1) -> "Multiset":
        """Return a new multiset with ``count`` copies of ``item`` added."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return self
        counts = dict(self._items)
        counts[item] = counts.get(item, 0) + count
        return Multiset._from_sorted(
            tuple(sorted(counts.items(), key=lambda pair: repr(pair[0])))
        )

    def remove(self, item: T, count: int = 1) -> "Multiset":
        """Return a new multiset with ``count`` copies of ``item`` removed.

        Raises :class:`KeyError` if fewer than ``count`` copies are present.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return self
        counts = dict(self._items)
        have = counts.get(item, 0)
        if have < count:
            raise KeyError(f"cannot remove {count} x {item!r}: only {have} present")
        if have == count:
            del counts[item]
        else:
            counts[item] = have - count
        return Multiset._from_sorted(
            tuple(sorted(counts.items(), key=lambda pair: repr(pair[0])))
        )

    def count(self, item: T) -> int:
        """Copies of ``item`` present (0 when absent)."""
        for element, count in self._items:
            if element == item:
                return count
        return 0

    def distinct(self) -> Iterator[T]:
        """Iterate over distinct elements (canonical order)."""
        for element, _count in self._items:
            yield element

    def items(self) -> Iterator[Tuple[T, int]]:
        """Iterate (element, count) pairs in canonical order."""
        return iter(self._items)

    def map(self, fn) -> "Multiset":
        """Return a new multiset with ``fn`` applied to each element.

        Used by symmetry reduction to rename process indices inside
        in-flight messages.
        """
        return Multiset(
            element for item, count in self._items for element in [fn(item)] * count
        )

    def filter(self, predicate) -> "Multiset":
        """A new multiset keeping only elements the predicate accepts."""
        return Multiset(
            item for item, count in self._items for _ in range(count) if predicate(item)
        )

    def __contains__(self, item: object) -> bool:
        return self.count(item) > 0  # type: ignore[arg-type]

    def __len__(self) -> int:
        return sum(count for _item, count in self._items)

    def __iter__(self) -> Iterator[T]:
        for item, count in self._items:
            for _ in range(count):
                yield item

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{item!r}" + (f" x{count}" if count > 1 else "")
            for item, count in self._items
        )
        return f"Multiset({{{inner}}})"
