"""Scalarset symmetry reduction (Ip & Dill style).

Replicated processes (e.g. the cache controllers in the MSI case study) are
interchangeable: any permutation of their indices maps reachable states to
reachable states.  Exploring one representative per permutation orbit shrinks
the state space by up to ``n!`` for ``n`` replicas.  The paper stresses that
realising symmetry reduction is *straightforward* in an explicit-state tool
(unlike symbolic ones) — and indeed this module is small.

The user supplies a ``permute(state, mapping)`` function that renames every
occurrence of a scalarset index inside a state according to ``mapping``
(a tuple where ``mapping[old] == new``).  :class:`Permuter` then
canonicalises a state to the minimum of its orbit under a deterministic
serialisation order.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Sequence, Tuple

from repro.errors import ModelError
from repro.mc.state import state_key
from repro.mc.system import TransitionSystem

PermuteFn = Callable[[Any, Tuple[int, ...]], Any]


class ScalarSet:
    """A named finite index set whose elements are interchangeable."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int) -> None:
        if size <= 0:
            raise ModelError(f"scalarset {name!r} must have positive size")
        self.name = name
        self.size = size

    def indices(self) -> range:
        return range(self.size)

    def permutations(self) -> List[Tuple[int, ...]]:
        """All permutation mappings of this scalarset (identity first)."""
        return sorted(itertools.permutations(range(self.size)))

    def __repr__(self) -> str:
        return f"ScalarSet({self.name!r}, size={self.size})"


class Permuter:
    """Canonicalises states to the lexicographically-minimal orbit member.

    For multiple scalarsets, supply one ``permute`` function that accepts a
    mapping per scalarset: ``permute(state, mappings)`` where ``mappings`` is
    a tuple aligned with ``scalarsets``.  For the common single-scalarset
    case, use :meth:`for_single` which adapts a one-mapping function.
    """

    def __init__(
        self,
        scalarsets: Sequence[ScalarSet],
        permute: Callable[[Any, Tuple[Tuple[int, ...], ...]], Any],
    ) -> None:
        if not scalarsets:
            raise ModelError("Permuter requires at least one scalarset")
        self.scalarsets = list(scalarsets)
        self._permute = permute
        self._mappings: List[Tuple[Tuple[int, ...], ...]] = [
            combo
            for combo in itertools.product(
                *(s.permutations() for s in self.scalarsets)
            )
        ]

    @classmethod
    def for_single(cls, scalarset: ScalarSet, permute: PermuteFn) -> "Permuter":
        """Adapt a single-scalarset permute function."""
        return cls(
            [scalarset],
            lambda state, mappings: permute(state, mappings[0]),
        )

    @property
    def orbit_size(self) -> int:
        return len(self._mappings)

    def orbit(self, state: Any) -> List[Any]:
        """All images of ``state`` under the permutation group (with dups)."""
        return [self._permute(state, mappings) for mappings in self._mappings]

    def canonicalize(self, state: Any) -> Any:
        """Return the orbit member with the minimal serialised form."""
        best = state
        best_key = state_key(state)
        for mappings in self._mappings[1:]:  # mappings[0] is the identity
            candidate = self._permute(state, mappings)
            candidate_key = state_key(candidate)
            if candidate_key < best_key:
                best = candidate
                best_key = candidate_key
        return best


def CanonicalizingSystem(system: TransitionSystem, permuter: Permuter) -> TransitionSystem:
    """Return a copy of ``system`` that canonicalises via ``permuter``.

    Named like a class because it constructs a system; kept a function so the
    result is a plain :class:`TransitionSystem`.
    """
    return system.with_canonicalizer(permuter.canonicalize)
