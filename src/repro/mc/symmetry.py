"""Scalarset symmetry reduction (Ip & Dill style), with cached canonicalisation.

Replicated processes (e.g. the cache controllers in the MSI case study) are
interchangeable: any permutation of their indices maps reachable states to
reachable states.  Exploring one representative per permutation orbit shrinks
the state space by up to ``n!`` for ``n`` replicas.  The paper stresses that
realising symmetry reduction is *straightforward* in an explicit-state tool
(unlike symbolic ones) — and indeed this module is small.

The user supplies a ``permute(state, mapping)`` function that renames every
occurrence of a scalarset index inside a state according to ``mapping``
(a tuple where ``mapping[old] == new``).  :class:`Permuter` then
canonicalises a state to a deterministic orbit representative.

Canonicalisation is the hot path of every model-checker run (one call per
generated successor), so two optimisations sit in front of the naive
minimum-of-the-orbit search:

* **Sorted-replica fast path.**  When the model supplies ``replica_keys``
  — a function projecting the state onto one orderable key per replica,
  invariant under renaming of the *other* replicas — and those keys are
  pairwise distinct, sorting replicas by key yields the orbit
  representative with a single ``permute`` call instead of ``n!`` of them.
  Key distinctness is an orbit invariant, so every member of an orbit
  takes the same path and lands on the same representative; ties fall
  back to the full orbit search.
* **Orbit-representative memo cache.**  :class:`CachingCanonicalizer`
  memoises raw state → canonical representative.  States recur massively
  both within a run (the same raw successor generated along different
  paths) and *across* candidate evaluations of one synthesis run (the
  system object — and hence the cache — is shared), and canonicalisation
  is candidate-independent, so the cache is sound across runs.  Hit/size
  counters surface in :class:`~repro.mc.result.RunStats` as
  ``canon_cache_hits`` / ``canon_cache_size``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.mc.state import state_key
from repro.mc.system import TransitionSystem

PermuteFn = Callable[[Any, Tuple[int, ...]], Any]
#: projects a state onto one orderable key per replica (see Permuter docs)
ReplicaKeysFn = Callable[[Any], Sequence[Any]]

#: default orbit-cache capacity; on overflow the oldest half of the
#: entries is evicted (states are small tuples, so a million entries is
#: tens of MB at most)
DEFAULT_CACHE_ENTRIES = 1 << 20


class ScalarSet:
    """A named finite index set whose elements are interchangeable."""

    __slots__ = ("name", "size", "_perms")

    def __init__(self, name: str, size: int) -> None:
        if size <= 0:
            raise ModelError(f"scalarset {name!r} must have positive size")
        self.name = name
        self.size = size
        self._perms: Optional[List[Tuple[int, ...]]] = None

    def indices(self) -> range:
        """The index range of this scalarset."""
        return range(self.size)

    def permutations(self) -> List[Tuple[int, ...]]:
        """All permutation mappings of this scalarset (identity first).

        Precomputed once per scalarset and reused; callers must not mutate
        the returned list.
        """
        if self._perms is None:
            self._perms = sorted(itertools.permutations(range(self.size)))
        return self._perms

    def __repr__(self) -> str:
        return f"ScalarSet({self.name!r}, size={self.size})"


class CachingCanonicalizer:
    """Memoising wrapper around a canonicalisation function.

    Maps raw (hashable) states to their orbit representatives.  Correct
    for any deterministic canonicaliser; shared across runs of the same
    system because canonicalisation does not depend on the candidate
    under evaluation.

    Thread note: the thread backend shares one instance across workers.
    Dict reads/writes are GIL-atomic, so a race can at worst duplicate a
    computation; the ``hits``/``misses`` counters may undercount slightly
    under contention, and a single run's hit *delta* (``RunStats``) can
    include concurrent runs' hits — both acceptable for diagnostics.
    """

    __slots__ = ("_canonicalize", "_cache", "max_entries", "hits", "misses")

    def __init__(
        self,
        canonicalize: Callable[[Any], Any],
        max_entries: int = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        if max_entries <= 0:
            raise ModelError("max_entries must be positive")
        self._canonicalize = canonicalize
        self._cache: dict = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __call__(self, state: Any) -> Any:
        cache = self._cache
        canon = cache.get(state)
        if canon is not None:
            self.hits += 1
            return canon
        canon = self._canonicalize(state)
        if len(cache) >= self.max_entries:
            self._evict_half()
        cache[state] = canon
        # The representative will itself be generated as a raw successor
        # sooner or later; seeding it is free.
        cache[canon] = canon
        self.misses += 1
        return canon

    def _evict_half(self) -> None:
        """Drop the oldest half of the memo instead of wiping it.

        Dict insertion order makes the first ``len//2`` keys the oldest;
        recent entries — the ones the frontier is still generating near —
        survive, so an overflow costs half the memo rather than all of it.
        If a concurrent insert resizes the dict mid-scan (thread backend),
        fall back to the old wholesale clear: correctness never depends on
        what the cache retains.
        """
        cache = self._cache
        try:
            oldest = list(itertools.islice(iter(cache), len(cache) // 2))
            for key in oldest:
                cache.pop(key, None)
        except RuntimeError:  # dict mutated during iteration
            cache.clear()

    @property
    def size(self) -> int:
        """Entries currently memoised."""
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()


class Permuter:
    """Canonicalises states to a deterministic orbit representative.

    Without ``replica_keys`` the representative is the lexicographically-
    minimal orbit member under :func:`~repro.mc.state.state_key`.  With
    ``replica_keys`` (single-scalarset only), orbits whose replica keys
    are pairwise distinct use the sorted-replica fast path instead, whose
    representative is equally deterministic and orbit-consistent but not
    necessarily the ``state_key`` minimum.

    ``replica_keys(state)`` must return one orderable key per replica
    index such that ``keys(permute(state, m))[m[i]] == keys(state)[i]``
    — i.e. each key captures everything about replica ``i`` (local state,
    relations like "is the owner", messages addressed to it) in a form
    invariant under renaming of the other replicas.

    For multiple scalarsets, supply one ``permute`` function that accepts a
    mapping per scalarset: ``permute(state, mappings)`` where ``mappings`` is
    a tuple aligned with ``scalarsets``.  For the common single-scalarset
    case, use :meth:`for_single` which adapts a one-mapping function.
    """

    def __init__(
        self,
        scalarsets: Sequence[ScalarSet],
        permute: Callable[[Any, Tuple[Tuple[int, ...], ...]], Any],
        replica_keys: Optional[ReplicaKeysFn] = None,
    ) -> None:
        if not scalarsets:
            raise ModelError("Permuter requires at least one scalarset")
        if replica_keys is not None and len(scalarsets) != 1:
            raise ModelError(
                "the sorted-replica fast path supports a single scalarset"
            )
        self.scalarsets = list(scalarsets)
        self._permute = permute
        self._replica_keys = replica_keys
        self._mappings: List[Tuple[Tuple[int, ...], ...]] = [
            combo
            for combo in itertools.product(
                *(s.permutations() for s in self.scalarsets)
            )
        ]
        #: diagnostics: canonicalisations served by the fast path / by the
        #: full orbit search
        self.fast_path_hits = 0
        self.full_orbit_scans = 0

    @classmethod
    def for_single(
        cls,
        scalarset: ScalarSet,
        permute: PermuteFn,
        replica_keys: Optional[ReplicaKeysFn] = None,
    ) -> "Permuter":
        """Adapt a single-scalarset permute function."""
        return cls(
            [scalarset],
            lambda state, mappings: permute(state, mappings[0]),
            replica_keys=replica_keys,
        )

    @property
    def orbit_size(self) -> int:
        """Number of permutation mappings applied per orbit scan."""
        return len(self._mappings)

    def orbit(self, state: Any) -> List[Any]:
        """All images of ``state`` under the permutation group (with dups)."""
        return [self._permute(state, mappings) for mappings in self._mappings]

    def canonicalize(self, state: Any) -> Any:
        """Return this orbit's deterministic representative."""
        if self._replica_keys is not None:
            keys = self._replica_keys(state)
            order = sorted(range(len(keys)), key=keys.__getitem__)
            distinct = all(
                keys[order[i]] != keys[order[i + 1]] for i in range(len(order) - 1)
            )
            if distinct:
                self.fast_path_hits += 1
                mapping = [0] * len(order)
                for rank, old_index in enumerate(order):
                    mapping[old_index] = rank
                if mapping == list(range(len(order))):
                    return state
                return self._permute(state, (tuple(mapping),))
        self.full_orbit_scans += 1
        best = state
        best_key = state_key(state)
        for mappings in self._mappings[1:]:  # mappings[0] is the identity
            candidate = self._permute(state, mappings)
            candidate_key = state_key(candidate)
            if candidate_key < best_key:
                best = candidate
                best_key = candidate_key
        return best

    def make_canonicalizer(
        self, cache: bool = True, max_entries: int = DEFAULT_CACHE_ENTRIES
    ) -> Callable[[Any], Any]:
        """The canonicaliser to install on a system.

        With ``cache`` (the default) the returned callable is a
        :class:`CachingCanonicalizer` whose hit/size counters the
        exploration kernel surfaces in ``RunStats``.
        """
        if not cache:
            return self.canonicalize
        return CachingCanonicalizer(self.canonicalize, max_entries=max_entries)


def CanonicalizingSystem(
    system: TransitionSystem, permuter: Permuter, cache: bool = True
) -> TransitionSystem:
    """Return a copy of ``system`` that canonicalises via ``permuter``.

    Named like a class because it constructs a system; kept a function so the
    result is a plain :class:`TransitionSystem`.
    """
    return system.with_canonicalizer(permuter.make_canonicalizer(cache=cache))
