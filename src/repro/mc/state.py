"""State values for explicit-state exploration.

States must be immutable, hashable values: the explorer deduplicates states
in a hash set, and symmetry reduction replaces a state with the minimum of
its permutation orbit, which requires a total order on serialised states.

Any hashable value works as a state (tuples are idiomatic and fast).  For
structured protocol states this module provides :class:`Record`, a tiny
frozen attribute container with functional update, and :func:`state_key`, a
deterministic serialisation used for canonical ordering and fingerprinting.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

from repro.mc.multiset import Multiset


class Record:
    """A frozen, hashable record with functional update.

    >>> r = Record(x=1, y="a")
    >>> r2 = r.update(x=2)
    >>> (r.x, r2.x, r2.y)
    (1, 2, 'a')

    Fields are fixed at construction; :meth:`update` rejects unknown names so
    that typos in rule bodies fail loudly instead of silently growing state.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, **fields: Any) -> None:
        object.__setattr__(self, "_fields", tuple(sorted(fields.items())))
        object.__setattr__(self, "_hash", hash(self._fields))

    def update(self, **changes: Any) -> "Record":
        """A copy with the given fields replaced (unknown names rejected).

        ``_fields`` is already sorted, so the copy merges replacements in
        one pass instead of rebuilding a dict and re-sorting.
        """
        merged = tuple(
            (name, changes.pop(name)) if name in changes else pair
            for pair in self._fields
            for name in (pair[0],)
        )
        if changes:
            name = next(iter(changes))
            raise AttributeError(f"Record has no field {name!r}")
        record = object.__new__(Record)
        object.__setattr__(record, "_fields", merged)
        object.__setattr__(record, "_hash", hash(merged))
        return record

    def as_dict(self) -> Dict[str, Any]:
        """The fields as a plain dict."""
        return dict(self._fields)

    def __getattr__(self, name: str) -> Any:
        for field, value in object.__getattribute__(self, "_fields"):
            if field == name:
                return value
        raise AttributeError(f"Record has no field {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Record is immutable; use .update(...)")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._fields)
        return f"Record({inner})"


def state_key(state: Any) -> Tuple[Any, ...]:
    """Serialise a state into a nested tuple with a deterministic total order.

    The result contains only strings, ints, and nested tuples, so any two
    serialised states compare with ``<`` without type errors.  Used to pick
    the canonical representative of a symmetry orbit.
    """
    return _serialise(state)


def _serialise(value: Any) -> Any:
    if isinstance(value, Record):
        return ("record",) + tuple(
            (name, _serialise(field)) for name, field in value
        )
    if isinstance(value, Multiset):
        return ("multiset",) + tuple(
            (_serialise(item), count) for item, count in value.items()
        )
    if isinstance(value, tuple):
        return ("tuple",) + tuple(_serialise(item) for item in value)
    if isinstance(value, frozenset):
        return ("frozenset",) + tuple(sorted((repr(v), _serialise(v)) for v in value))
    if isinstance(value, bool):
        return ("bool", int(value))
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, str):
        return ("str", value)
    if value is None:
        return ("none",)
    # Fallback: rely on repr for exotic-but-hashable values.
    return ("repr", repr(value))
