"""Transition system definitions.

A :class:`TransitionSystem` bundles everything the explorer needs: initial
states, guarded-command rules, properties, a deadlock policy, and an optional
canonicalisation function (supplied by :mod:`repro.mc.symmetry` when symmetry
reduction is enabled).  The expressiveness matches what the paper describes:
"any guarded-command style finite-state transition system (similar in
expressiveness to Murphi)".
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ModelError
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.rule import Rule

Canonicalizer = Callable[[Any], Any]


class TransitionSystem:
    """A guarded-command transition system with properties.

    Args:
        name: human-readable system name (appears in reports).
        initial_states: the (non-empty) collection of initial states, or a
            zero-argument callable producing it.
        rules: the guarded-command rules; order is significant because hole
            discovery order follows rule order.
        invariants: per-state safety predicates.
        coverage: existential reachability predicates.
        deadlock: policy for terminal states (default: fail on deadlock, the
            appropriate default for protocols).
        canonicalize: maps a state to its symmetry-orbit representative;
            identity when symmetry reduction is off.
        packed_spec: optional :class:`~repro.mc.packed.PackedSpec` giving
            the system a fixed-layout state codec; when present, kernels
            run with ``packed=True`` explore on packed encodings.  ``None``
            (no codec) makes packed mode fall back to the object path.
    """

    def __init__(
        self,
        name: str,
        initial_states: Any,
        rules: Sequence[Rule],
        invariants: Sequence[Invariant] = (),
        coverage: Sequence[CoverageProperty] = (),
        deadlock: Optional[DeadlockPolicy] = None,
        canonicalize: Optional[Canonicalizer] = None,
        packed_spec: Any = None,
    ) -> None:
        if not name:
            raise ModelError("system name must be non-empty")
        if not rules:
            raise ModelError("a transition system needs at least one rule")
        self.name = name
        self._initial_states = initial_states
        self.rules: List[Rule] = list(rules)
        self.invariants: List[Invariant] = list(invariants)
        self.coverage: List[CoverageProperty] = list(coverage)
        self.deadlock = deadlock if deadlock is not None else DeadlockPolicy.fail()
        self.canonicalize: Canonicalizer = canonicalize or (lambda state: state)
        self.packed_spec = packed_spec
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ModelError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)

    def initial_states(self) -> List[Any]:
        """Materialise the (non-empty) initial states."""
        states = self._initial_states() if callable(self._initial_states) else self._initial_states
        states = list(states)
        if not states:
            raise ModelError(f"system {self.name!r} has no initial states")
        return states

    def with_canonicalizer(self, canonicalize: Canonicalizer) -> "TransitionSystem":
        """Return a copy of this system using the given canonicalizer."""
        return TransitionSystem(
            name=self.name,
            initial_states=self._initial_states,
            rules=self.rules,
            invariants=self.invariants,
            coverage=self.coverage,
            deadlock=self.deadlock,
            canonicalize=canonicalize,
            packed_spec=self.packed_spec,
        )

    def __repr__(self) -> str:
        return (
            f"TransitionSystem({self.name!r}, rules={len(self.rules)}, "
            f"invariants={len(self.invariants)}, coverage={len(self.coverage)})"
        )
