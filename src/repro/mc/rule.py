"""Guarded-command transition rules.

A :class:`Rule` is a named guarded command: ``guard(state)`` decides whether
the rule is enabled, ``apply(state, ctx)`` yields successor states.  Rule
bodies receive an :class:`~repro.mc.context.ExecutionContext` through which
they resolve synthesis holes; complete (hole-free) systems simply ignore it.

:func:`ruleset` expands a parameterised rule over a finite parameter domain
(typically the indices of a scalarset of replicated processes), mirroring
Murphi's ``ruleset`` construct.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List, Mapping, Sequence

from repro.errors import ModelError

GuardFn = Callable[[Any], bool]
ApplyFn = Callable[..., Iterable[Any]]


class Rule:
    """A single (fully instantiated) guarded command."""

    __slots__ = ("name", "guard", "apply", "params")

    def __init__(
        self,
        name: str,
        guard: GuardFn,
        apply: Callable[[Any, Any], Iterable[Any]],
        params: Mapping[str, Any] = None,
    ) -> None:
        if not name:
            raise ModelError("rule name must be non-empty")
        self.name = name
        self.guard = guard
        self.apply = apply
        self.params = dict(params or {})

    def fire(self, state: Any, ctx: Any) -> List[Any]:
        """Return the successors of ``state`` under this rule (may be empty).

        The caller is expected to have checked :attr:`guard` already; calling
        ``fire`` on a disabled rule is a modelling error.
        """
        return list(self.apply(state, ctx))

    def __repr__(self) -> str:
        if self.params:
            inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
            return f"Rule({self.name!r}, {inner})"
        return f"Rule({self.name!r})"


#: Alias kept for API clarity: an element of ``TransitionSystem.rules``.
RuleInstance = Rule


def ruleset(
    name: str,
    parameters: Mapping[str, Sequence[Any]],
    guard: Callable[..., bool],
    apply: Callable[..., Iterable[Any]],
) -> List[Rule]:
    """Expand a parameterised rule over the product of parameter domains.

    ``guard`` and ``apply`` are called as ``guard(state, **binding)`` and
    ``apply(state, ctx, **binding)``.  The expansion order is deterministic
    (parameters sorted by name, domains in given order) so exploration and
    hole discovery order are reproducible.

    >>> rules = ruleset(
    ...     "inc", {"i": [0, 1]},
    ...     guard=lambda s, i: True,
    ...     apply=lambda s, ctx, i: [s + i],
    ... )
    >>> [r.name for r in rules]
    ['inc[i=0]', 'inc[i=1]']
    """
    if not parameters:
        raise ModelError("ruleset requires at least one parameter; use Rule directly")
    names = sorted(parameters)
    domains = [list(parameters[param]) for param in names]
    for param, domain in zip(names, domains):
        if not domain:
            raise ModelError(f"ruleset parameter {param!r} has an empty domain")
    rules: List[Rule] = []
    for values in itertools.product(*domains):
        binding = dict(zip(names, values))
        label = ",".join(f"{param}={value}" for param, value in binding.items())

        def make(bound: Mapping[str, Any]) -> Rule:
            return Rule(
                name=f"{name}[{label}]",
                guard=lambda state, _b=bound: guard(state, **_b),
                apply=lambda state, ctx, _b=bound: apply(state, ctx, **_b),
                params=bound,
            )

        rules.append(make(binding))
    return rules
