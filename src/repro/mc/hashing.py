"""Stable state fingerprints.

The analysis layer groups synthesised solutions by *behaviour*: two solutions
whose explored state graphs have the same fingerprint behave identically
(the paper groups its 12 MSI-large solutions into 3 behavioural sets this
way, observing 5207/6025/6332 visited states per group).  Python's built-in
``hash`` is salted per process, so fingerprints use a deterministic FNV-1a
over the serialised state instead.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.mc.state import state_key

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def fingerprint_bytes(data: bytes) -> int:
    """64-bit FNV-1a hash of a byte string."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK
    return value


def fingerprint_state(state: Any) -> int:
    """Deterministic 64-bit fingerprint of a single state."""
    return fingerprint_bytes(repr(state_key(state)).encode("utf-8"))


def fingerprint_state_set(states: Iterable[Any]) -> int:
    """Order-independent fingerprint of a set of states.

    XOR-combining per-state fingerprints makes the result independent of
    iteration order, so it can be computed over hash-set contents directly.
    """
    combined = 0
    count = 0
    for state in states:
        combined ^= fingerprint_state(state)
        count += 1
    # Mix in the count so the empty set and self-cancelling pairs differ.
    return fingerprint_bytes(f"{combined}:{count}".encode("ascii"))
