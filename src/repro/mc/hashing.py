"""Stable state fingerprints.

The analysis layer groups synthesised solutions by *behaviour*: two solutions
whose explored state graphs have the same fingerprint behave identically
(the paper groups its 12 MSI-large solutions into 3 behavioural sets this
way, observing 5207/6025/6332 visited states per group).  Python's built-in
``hash`` is salted per process, so fingerprints use a deterministic FNV-1a
over the serialised state instead.

The per-state fingerprint walks the :func:`~repro.mc.state.state_key`
tuple directly — mixing type tags, lengths, and encoded leaf values into
the running hash — rather than building a ``repr`` string of the whole key
first, which allocated a throwaway string per state on a hot analysis
path.  Tags and lengths keep the encoding prefix-free, so e.g.
``("ab",)`` and ``("a", "b")`` cannot collide structurally, and ints can
never alias strings.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.mc.state import state_key

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1

# Single-byte type tags mixed into the stream ahead of each value.
_TAG_TUPLE = 0x28  # "("
_TAG_INT = 0x69  # "i"
_TAG_STR = 0x73  # "s"
_TAG_OTHER = 0x3F  # "?"


def fingerprint_bytes(data: bytes) -> int:
    """64-bit FNV-1a hash of a byte string."""
    return _mix_bytes(_FNV_OFFSET, data)


def _mix_bytes(value: int, data: bytes) -> int:
    # Consume 8-byte chunks via one int.from_bytes each instead of per-byte
    # iteration: the unrolled shift/XOR/multiply steps are byte-for-byte the
    # same FNV-1a recurrence as the scalar loop (each XORed operand is < 256
    # and the running value stays masked to 64 bits at every step), so the
    # output is identical — pinned on fixed vectors in tests/mc/test_hashing.py.
    prime = _FNV_PRIME
    mask = _MASK
    n_chunks = len(data) >> 3
    offset = n_chunks << 3
    for i in range(0, offset, 8):
        chunk = int.from_bytes(data[i:i + 8], "little")
        value = ((value ^ (chunk & 0xFF)) * prime) & mask
        value = ((value ^ ((chunk >> 8) & 0xFF)) * prime) & mask
        value = ((value ^ ((chunk >> 16) & 0xFF)) * prime) & mask
        value = ((value ^ ((chunk >> 24) & 0xFF)) * prime) & mask
        value = ((value ^ ((chunk >> 32) & 0xFF)) * prime) & mask
        value = ((value ^ ((chunk >> 40) & 0xFF)) * prime) & mask
        value = ((value ^ ((chunk >> 48) & 0xFF)) * prime) & mask
        value = ((value ^ (chunk >> 56)) * prime) & mask
    for byte in data[offset:]:
        value = ((value ^ byte) * prime) & mask
    return value


def _mix_int(value: int, number: int) -> int:
    length = (number.bit_length() + 8) // 8 or 1
    # The byte length is mixed ahead of the payload so the variable-width
    # encoding stays prefix-free (payload bytes cannot re-align across
    # element boundaries); 4 fixed bytes cover any realistic magnitude.
    value = _mix_bytes(value, length.to_bytes(4, "little"))
    return _mix_bytes(value, number.to_bytes(length, "little", signed=True))


def _mix_value(value: int, item: Any) -> int:
    """Mix one serialised-key node (tuple/str/int) into the running hash."""
    if isinstance(item, tuple):
        value = _mix_bytes(value, bytes((_TAG_TUPLE,)))
        value = _mix_int(value, len(item))
        for element in item:
            value = _mix_value(value, element)
        return value
    if isinstance(item, str):
        data = item.encode("utf-8")
        value = _mix_bytes(value, bytes((_TAG_STR,)))
        value = _mix_int(value, len(data))
        return _mix_bytes(value, data)
    if isinstance(item, int):  # bools were lowered to ints by state_key
        value = _mix_bytes(value, bytes((_TAG_INT,)))
        return _mix_int(value, item)
    # state_key only emits tuples/strs/ints, but stay total for direct use.
    data = repr(item).encode("utf-8")
    value = _mix_bytes(value, bytes((_TAG_OTHER,)))
    value = _mix_int(value, len(data))
    return _mix_bytes(value, data)


def fingerprint_state(state: Any) -> int:
    """Deterministic 64-bit fingerprint of a single state."""
    return _mix_value(_FNV_OFFSET, state_key(state))


def fingerprint_state_set(states: Iterable[Any]) -> int:
    """Order-independent fingerprint of a set of states.

    XOR-combining per-state fingerprints makes the result independent of
    iteration order, so it can be computed over hash-set contents directly.
    """
    combined = 0
    count = 0
    for state in states:
        combined ^= fingerprint_state(state)
        count += 1
    # Mix in the count so the empty set and self-cancelling pairs differ.
    return fingerprint_bytes(f"{combined}:{count}".encode("ascii"))
