"""Breadth-first explicit-state exploration.

A thin FIFO-strategy shell over the unified
:class:`~repro.mc.kernel.ExplorationKernel`, which implements the paper's
embedded model checker and pins down the verdict semantics shared by every
search strategy (see the kernel's module docstring).  BFS is the synthesis
default because FIFO discovery order yields *minimal* error traces
(footnote 1 of the paper: minimality matters because a short trace touches
few holes, which is what makes candidate pruning effective).

``ExplorationLimits`` is re-exported here for backwards compatibility; it
lives in :mod:`repro.mc.kernel`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mc.kernel import ExplorationKernel, ExplorationLimits, FifoFrontier
from repro.mc.system import TransitionSystem

__all__ = ["BfsExplorer", "ExplorationLimits"]


class BfsExplorer(ExplorationKernel):
    """One-shot breadth-first explorer (FIFO frontier strategy)."""

    def __init__(
        self,
        system: TransitionSystem,
        resolver: Any = None,
        limits: Optional[ExplorationLimits] = None,
        record_traces: bool = True,
        track_hole_paths: bool = False,
        capture_graph: Any = None,
    ) -> None:
        super().__init__(
            system,
            resolver=resolver,
            strategy=FifoFrontier(),
            limits=limits,
            record_traces=record_traces,
            track_hole_paths=track_hole_paths,
            capture_graph=capture_graph,
        )
