"""Optional capture of the explored state graph.

Pass a :class:`StateGraph` as ``capture_graph`` to any explorer — the
kernel, :class:`~repro.mc.bfs.BfsExplorer`, or
:class:`~repro.mc.dfs.DfsExplorer` — to record every visited state and
transition.  Used by the Figure 2 walkthrough example and by debugging
workflows (GraphViz export).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple


@dataclass
class StateGraph:
    """The explored portion of a state graph."""

    states: Dict[int, Any] = field(default_factory=dict)
    depths: Dict[int, int] = field(default_factory=dict)
    edges: Set[Tuple[int, int, str]] = field(default_factory=set)

    def add_state(self, sid: int, state: Any, depth: int) -> None:
        """Record a visited state under its node id, with its depth."""
        self.states[sid] = state
        self.depths[sid] = depth

    def add_edge(self, src: int, dst: int, rule_name: str) -> None:
        """Record one transition between two interned states."""
        self.edges.add((src, dst, rule_name))

    @property
    def num_states(self) -> int:
        """Number of interned states."""
        return len(self.states)

    @property
    def num_edges(self) -> int:
        """Number of recorded transitions."""
        return len(self.edges)

    def successors(self, sid: int) -> List[Tuple[int, str]]:
        """Sorted ``(dst, rule_name)`` pairs of edges leaving ``sid``."""
        return sorted(
            (dst, rule) for (src, dst, rule) in self.edges if src == sid
        )

    def to_dot(self, state_label=repr) -> str:
        """Render as a GraphViz ``digraph`` document."""
        lines = ["digraph explored {", "  rankdir=LR;"]
        for sid in sorted(self.states):
            label = state_label(self.states[sid]).replace('"', r"\"")
            lines.append(f'  s{sid} [label="{label}"];')
        for src, dst, rule in sorted(self.edges):
            rule_label = rule.replace('"', r"\"")
            lines.append(f'  s{src} -> s{dst} [label="{rule_label}"];')
        lines.append("}")
        return "\n".join(lines)
