"""Candidate enumeration.

The synthesis procedure runs in *passes*: each pass enumerates the full
mixed-radix product over the holes known at pass start (first-discovered
hole most significant, matching Figure 2 of the paper); holes discovered
during a pass join the vector as wildcards and become enumerable in the next
pass ("once a hole has been used as a non-wildcard in any candidate
configuration, it cannot be used as a wildcard again").

Two enumerator implementations walk one pass (optionally restricted to an
index subrange, which is how parallel workers split the space):

* :class:`SubtreeEnumerator` — DFS with incremental pattern matching
  (:class:`~repro.core.pruning.DfsMatcher`); when a pattern fires at depth
  ``d``, the whole subtree (``prod(radices[d+1:])`` candidates) is skipped
  and counted analytically.  This is our CPython-feasible replacement for
  the paper's per-candidate lookup over billions of candidates (DESIGN.md,
  substitution 1).  Because a pattern fires the moment its *last*
  constrained position is pushed, conflict-generalised patterns
  (:func:`~repro.core.pruning.generalise_failure`) — whose highest
  constrained position is the end of the shortest failure-forcing prefix —
  cut subtrees at the shallowest sound depth, once per matching assignment
  of their (possibly sparse) constrained positions.
* :class:`NaiveEnumerator` — visits every index and performs a flat
  per-candidate table match: the paper-faithful behaviour, used for the
  small problem sizes and for differential testing of the subtree walker.

Both yield the digit tuples of candidates that survived pruning and expose
identical counters, so the engine is agnostic to the walker used.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.pruning import DfsMatcher, PruningTable
from repro.util.itertools2 import mixed_radix_decode, product_size


class EnumeratorCounters:
    """Shared counter block for one pass walk."""

    __slots__ = ("covered", "yielded", "skipped")

    def __init__(self, tags: Sequence[str]) -> None:
        self.covered = 0
        self.yielded = 0
        self.skipped: Dict[str, int] = {tag: 0 for tag in tags}

    def total_skipped(self) -> int:
        return sum(self.skipped.values())


class SubtreeEnumerator:
    """Subtree-skipping DFS over one pass's candidate space.

    Args:
        radices: domain size per hole position (discovery order).
        matchers: ordered ``(tag, DfsMatcher)`` pairs; on a match the subtree
            is skipped and attributed to the first matching tag (so put the
            failure table before the success table).
        start, end: half-open candidate-index range to walk (defaults to the
            full product); indices follow mixed-radix order with position 0
            most significant.
    """

    def __init__(
        self,
        radices: Sequence[int],
        matchers: Sequence[Tuple[str, DfsMatcher]],
        start: int = 0,
        end: Optional[int] = None,
    ) -> None:
        self.radices = list(radices)
        self.matchers = list(matchers)
        total = product_size(self.radices)
        self.start = max(0, start)
        self.end = total if end is None else min(end, total)
        self.counters = EnumeratorCounters([tag for tag, _m in self.matchers])
        self._weights: List[int] = []
        weight = 1
        for radix in reversed(self.radices):
            self._weights.append(weight)
            weight *= radix
        self._weights.reverse()
        self._digits: List[int] = []

    @property
    def current_path(self) -> Tuple[int, ...]:
        """Digits currently on the DFS path (valid while paused at a yield)."""
        return tuple(self._digits)

    def matched_tag(self) -> Optional[str]:
        """First tag whose matcher currently has a fully-satisfied pattern.

        Call after integrating freshly arrived patterns at a leaf to decide
        whether the about-to-be-dispatched candidate is pruned after all.
        """
        for tag, matcher in self.matchers:
            if matcher.any_matched:
                return tag
        return None

    def note_leaf_skipped(self, tag: str) -> None:
        """Attribute the current (not yielded again) leaf to ``tag``."""
        self.counters.yielded -= 1
        self.counters.skipped[tag] += 1

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        if self.start >= self.end:
            return
        self.counters.covered += self.end - self.start
        if not self.radices:
            # The single empty candidate.
            self.counters.yielded += 1
            yield ()
            return
        yield from self._walk(0, 0)

    def _walk(self, position: int, base_index: int) -> Iterator[Tuple[int, ...]]:
        weight = self._weights[position]
        last = position == len(self.radices) - 1
        for digit in range(self.radices[position]):
            low = base_index + digit * weight
            high = low + weight
            if high <= self.start or low >= self.end:
                continue
            overlap = min(high, self.end) - max(low, self.start)
            matched: Optional[str] = None
            for tag, matcher in self.matchers:
                fired = matcher.push(position, digit)
                if fired and matched is None:
                    matched = tag
            if matched is None:
                # A matcher may already be satisfied from a mid-walk
                # integrate at a shallower position.
                matched = self.matched_tag()
            self._digits.append(digit)
            if matched is not None:
                self.counters.skipped[matched] += overlap
            elif last:
                self.counters.yielded += 1
                yield tuple(self._digits)
            else:
                yield from self._walk(position + 1, low)
            self._digits.pop()
            for tag, matcher in reversed(self.matchers):
                matcher.pop(position, digit)


class NaiveEnumerator:
    """Flat per-candidate matching over one pass (paper-faithful).

    Matches each candidate index against the *live* pruning tables (so
    patterns recorded earlier in the same pass take effect immediately,
    like the paper's lookup table).
    """

    def __init__(
        self,
        radices: Sequence[int],
        tables: Sequence[Tuple[str, PruningTable]],
        start: int = 0,
        end: Optional[int] = None,
    ) -> None:
        self.radices = list(radices)
        self.tables = list(tables)
        total = product_size(self.radices)
        self.start = max(0, start)
        self.end = total if end is None else min(end, total)
        self.counters = EnumeratorCounters([tag for tag, _t in self.tables])
        self._digits: Tuple[int, ...] = ()

    @property
    def current_path(self) -> Tuple[int, ...]:
        return self._digits

    def matched_tag(self) -> Optional[str]:
        from repro.core.candidate import CandidateVector

        vector = CandidateVector.from_digits(self._digits)
        for tag, table in self.tables:
            if table.matches(vector) is not None:
                return tag
        return None

    def note_leaf_skipped(self, tag: str) -> None:
        self.counters.yielded -= 1
        self.counters.skipped[tag] += 1

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        from repro.core.candidate import CandidateVector

        if self.start >= self.end:
            return
        self.counters.covered += self.end - self.start
        for index in range(self.start, self.end):
            digits = mixed_radix_decode(index, self.radices)
            self._digits = digits
            vector = CandidateVector.from_digits(digits)
            matched: Optional[str] = None
            for tag, table in self.tables:
                if table.matches(vector) is not None:
                    matched = tag
                    break
            if matched is not None:
                self.counters.skipped[matched] += 1
                continue
            self.counters.yielded += 1
            yield digits
