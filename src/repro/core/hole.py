"""Holes: the unknowns of a protocol skeleton.

A :class:`Hole` is a named slot in a rule body with an ordered, designer-
provided domain of candidate :class:`~repro.core.action.Action` values.
Holes are *symmetry aware* by construction (paper, Section II): the hole
object is defined once at the skeleton level — per controller type, state,
and event — and replicated processes resolve the *same* hole object, so the
synthesiser never replicates holes per process instance.

Holes are compared by identity: two distinct Hole objects are distinct holes
even with equal names (names must still be unique within one skeleton, which
the registry enforces for readable reports).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.action import Action
from repro.errors import HoleDomainError


class Hole:
    """A synthesis hole with an ordered action domain."""

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Sequence[Action]) -> None:
        if not name:
            raise HoleDomainError("hole name must be non-empty")
        if not domain:
            raise HoleDomainError(f"hole {name!r} has an empty action domain")
        names = [a.name for a in domain]
        if len(set(names)) != len(names):
            raise HoleDomainError(f"hole {name!r} has duplicate action names")
        self.name = name
        self.domain: Tuple[Action, ...] = tuple(domain)

    @property
    def arity(self) -> int:
        """Number of candidate actions (excluding the implicit wildcard)."""
        return len(self.domain)

    def action_named(self, name: str) -> Action:
        """The domain action with the given name (KeyError if absent)."""
        for candidate in self.domain:
            if candidate.name == name:
                return candidate
        raise KeyError(f"hole {self.name!r} has no action named {name!r}")

    def index_of(self, name: str) -> int:
        """The domain position of the named action (KeyError if absent)."""
        for index, candidate in enumerate(self.domain):
            if candidate.name == name:
                return index
        raise KeyError(f"hole {self.name!r} has no action named {name!r}")

    def __repr__(self) -> str:
        return f"Hole({self.name!r}, arity={self.arity})"
