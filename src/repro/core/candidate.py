"""Candidate configuration vectors.

The synthesis procedure represents the set of discovered holes and the
current assignment as a vector of action indices — the paper's "candidate
configuration vector" — ordered by discovery.  Undiscovered or unassigned
holes carry the :data:`WILDCARD` sentinel: resolving a wildcard hole aborts
the model checker's current execution branch.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.hole import Hole
from repro.errors import CandidateError


class _Wildcard:
    """Singleton sentinel for the wildcard (default) hole assignment."""

    _instance: Optional["_Wildcard"] = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"


#: The wildcard assignment: "no action chosen yet; cut execution here".
WILDCARD = _Wildcard()


class CandidateVector:
    """An immutable assignment of action indices to the first N holes.

    ``entries[i]`` is the index into ``holes[i].domain`` or :data:`WILDCARD`.
    Holes discovered *after* this vector was built are implicitly wildcards.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence) -> None:
        self.entries: Tuple = tuple(entries)
        for entry in self.entries:
            if entry is WILDCARD:
                continue
            if not isinstance(entry, int) or entry < 0:
                raise CandidateError(f"invalid candidate entry {entry!r}")

    @classmethod
    def empty(cls) -> "CandidateVector":
        """The zero-length candidate (run 1 of the paper)."""
        return cls(())

    @classmethod
    def from_digits(cls, digits: Sequence[int]) -> "CandidateVector":
        """A fully-assigned vector from action indices."""
        return cls(tuple(digits))

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CandidateVector):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def action_index(self, position: int):
        """Entry at ``position``; positions beyond the vector are wildcards."""
        if position < len(self.entries):
            return self.entries[position]
        return WILDCARD

    def assigned_positions(self) -> Tuple[int, ...]:
        """Positions holding a concrete action (not the wildcard)."""
        return tuple(
            index for index, entry in enumerate(self.entries) if entry is not WILDCARD
        )

    def constraints(self) -> Tuple[Tuple[int, int], ...]:
        """The (position, action_index) pairs of non-wildcard entries."""
        return tuple(
            (index, entry)
            for index, entry in enumerate(self.entries)
            if entry is not WILDCARD
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            "?" if entry is WILDCARD else str(entry) for entry in self.entries
        )
        return f"CandidateVector([{inner}])"


def format_candidate(vector: CandidateVector, holes: Sequence[Hole]) -> str:
    """Render a candidate in the paper's notation, e.g. ``<1@B, 2@?>``.

    Hole numbering is 1-based to match Figure 2 of the paper; the action is
    shown by name.
    """
    parts = []
    for position, entry in enumerate(vector.entries):
        if entry is WILDCARD:
            label = "?"
        else:
            hole = holes[position]
            if entry >= hole.arity:
                raise CandidateError(
                    f"action index {entry} out of range for hole {hole.name!r}"
                )
            label = hole.domain[entry].name
        parts.append(f"{position + 1}@{label}")
    return "<" + ", ".join(parts) + ">"
