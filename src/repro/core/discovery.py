"""Lazy hole discovery and candidate-driven hole resolution.

The paper: "initially, no holes are known to the synthesis procedure, i.e.
holes are discovered lazily. Upon model checking, any newly encountered hole
is registered and the default action substituted" — where with pruning
enabled the default action is the wildcard, cutting the execution branch.

:class:`HoleRegistry` is the "global candidate vector" of the paper's
parallel-synthesis section: a thread-safe, append-only, discovery-ordered
registry of holes.  Reads (the common case: look up an already-discovered
hole's position) are lock-free — a deliberate mirror of the paper's
lock-free hot path; only first-time registration takes the lock.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.core.candidate import WILDCARD, CandidateVector
from repro.core.hole import Hole
from repro.errors import SynthesisError, WildcardEncountered


class HoleRegistry:
    """Append-only, discovery-ordered registry of holes (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._holes: List[Hole] = []
        self._positions: Dict[Hole, int] = {}
        self._names: Dict[str, Hole] = {}
        #: names whose slot holds a *placeholder* awaiting its real hole
        self._reserved: set = set()

    def reserve(self, hole: Hole) -> int:
        """Reserve a position for a hole known only by name/arity.

        Placeholder holes come from outside this process (a worker's
        :class:`~repro.dist.messages.HoleSpec`, a verdict-store replay):
        they carry the right name, arity, and action names but no
        executable actions.  The first *real* hole registered under the
        same name binds into the reserved slot (see :meth:`position_of`),
        keeping positions stable.  Reserving an already-known name is a
        no-op returning the existing position.
        """
        with self._lock:
            existing = self._names.get(hole.name)
            if existing is not None:
                return self._positions[existing]
            position = len(self._holes)
            self._holes.append(hole)
            self._positions[hole] = position
            self._names[hole.name] = hole
            self._reserved.add(hole.name)
            return position

    def position_of(self, hole: Hole, register: bool = True) -> Optional[int]:
        """Return the discovery position of ``hole``.

        With ``register=True`` (the resolver's mode), an unknown hole is
        appended and its new position returned — or, if the name has a
        reserved placeholder slot, bound into that slot; with
        ``register=False`` an unknown hole yields ``None``.
        """
        position = self._positions.get(hole)  # lock-free fast path
        if position is not None or not register:
            return position
        with self._lock:
            position = self._positions.get(hole)
            if position is not None:
                return position
            existing = self._names.get(hole.name)
            if existing is not None:
                if hole.name not in self._reserved:
                    raise SynthesisError(
                        f"two distinct holes share the name {hole.name!r}"
                    )
                if hole.arity != existing.arity:
                    raise SynthesisError(
                        f"hole {hole.name!r} has arity {hole.arity} here but "
                        f"{existing.arity} in its reserved slot — the rebuilt "
                        f"skeleton does not match the reservation source"
                    )
                position = self._positions[existing]
                del self._positions[existing]
                self._holes[position] = hole
                self._positions[hole] = position
                self._names[hole.name] = hole
                self._reserved.discard(hole.name)
                return position
            position = len(self._holes)
            self._holes.append(hole)
            self._positions[hole] = position
            self._names[hole.name] = hole
            return position

    @property
    def holes(self) -> Tuple[Hole, ...]:
        """Snapshot of discovered holes in discovery order."""
        with self._lock:
            return tuple(self._holes)

    def names(self) -> Tuple[str, ...]:
        """Hole names in discovery order.

        Names are the cross-process correlation key of the distributed
        backend: hole *objects* are identity-compared and process-local,
        so a worker's rebuilt holes map onto the coordinator's canonical
        positions by name (see :class:`repro.dist.worker.WorkerHoleRegistry`).
        """
        with self._lock:
            return tuple(hole.name for hole in self._holes)

    def hole_named(self, name: str) -> Hole:
        """The registered hole with this name, or None."""
        hole = self._names.get(name)
        if hole is None:
            raise KeyError(f"no discovered hole named {name!r}")
        return hole

    def __len__(self) -> int:
        return len(self._holes)

    def radices(self) -> Tuple[int, ...]:
        """Domain sizes of discovered holes, discovery order."""
        with self._lock:
            return tuple(hole.arity for hole in self._holes)


class DefaultingResolver:
    """Naive-mode resolver: unassigned holes get a default action, not a cut.

    This reproduces the paper's behaviour *without* candidate pruning: "any
    newly encountered hole is registered and the default action substituted,
    such that the model checker may continue on the current branch of
    execution".  We use ``default_index`` (conventionally 0, so skeletons
    should order a benign action first) as the default.
    """

    def __init__(
        self,
        registry: HoleRegistry,
        vector: CandidateVector,
        default_index: int = 0,
    ) -> None:
        self._registry = registry
        self._vector = vector
        self._default_index = default_index

    def resolve(self, hole: Hole):
        """Resolve per the paper's wildcard semantics (see class docs)."""
        position = self._registry.position_of(hole, register=True)
        entry = self._vector.action_index(position)
        if entry is WILDCARD:
            entry = min(self._default_index, hole.arity - 1)
        if entry >= hole.arity:
            raise SynthesisError(
                f"candidate assigns action index {entry} to hole {hole.name!r} "
                f"with arity {hole.arity}"
            )
        return hole.domain[entry]


class CandidateResolver:
    """Resolve holes against a candidate vector, discovering new holes.

    Holes at positions beyond the vector — or at positions the vector marks
    as wildcards — raise :class:`~repro.errors.WildcardEncountered`, which
    the model checker interprets as "abort this execution branch".
    """

    def __init__(self, registry: HoleRegistry, vector: CandidateVector) -> None:
        self._registry = registry
        self._vector = vector

    def resolve(self, hole: Hole):
        position = self._registry.position_of(hole, register=True)
        entry = self._vector.action_index(position)
        if entry is WILDCARD:
            raise WildcardEncountered(hole.name)
        if entry >= hole.arity:
            raise SynthesisError(
                f"candidate assigns action index {entry} to hole {hole.name!r} "
                f"with arity {hole.arity}"
            )
        return hole.domain[entry]
