"""The paper's primary contribution: explicit-state synthesis.

Given a protocol *skeleton* — a transition system whose rule bodies contain
:class:`~repro.core.hole.Hole` resolution points — the synthesis engine
enumerates assignments of designer-provided :class:`~repro.core.action.Action`
values to holes, dispatching each complete candidate to the embedded model
checker, and prunes candidates inferred to fail from previously recorded
failure patterns (Section II of the paper).
"""

from repro.core.action import Action, action
from repro.core.candidate import WILDCARD, CandidateVector, format_candidate
from repro.core.discovery import CandidateResolver, HoleRegistry
from repro.core.engine import SynthesisConfig, SynthesisEngine
from repro.core.enumeration import NaiveEnumerator, SubtreeEnumerator
from repro.core.hole import Hole
from repro.core.parallel import ParallelSynthesisEngine
from repro.core.pruning import DfsMatcher, PruningPattern, PruningTable
from repro.core.report import Solution, SynthesisReport

__all__ = [
    "Action",
    "CandidateResolver",
    "CandidateVector",
    "DfsMatcher",
    "Hole",
    "HoleRegistry",
    "NaiveEnumerator",
    "ParallelSynthesisEngine",
    "PruningPattern",
    "PruningTable",
    "Solution",
    "SubtreeEnumerator",
    "SynthesisConfig",
    "SynthesisEngine",
    "SynthesisReport",
    "WILDCARD",
    "action",
    "format_candidate",
]
