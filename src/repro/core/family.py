"""Hole families: sets of candidate completions checked as one quotient.

The 1-by-1 synthesis loop (:mod:`repro.core.engine`) enumerates every
completion of the discovered holes and model checks each.  A
:class:`HoleFamily` instead fixes only the holes whose option subset has
narrowed to a single action and leaves the rest as wildcards; one kernel
run on that *quotient* then classifies the whole family:

* **FAILURE** — the counterexample trace executed only the fixed holes,
  so by the paper's pruning soundness argument *every* member contains
  the same violation: the family is all-fail and prunes in one check.
* **SUCCESS** — the run completed wildcard-free, meaning the quotient
  never even read the unfixed holes: every member is behaviourally
  identical to the quotient, so the family is all-pass and each member
  is a solution with the quotient's visited set and fingerprint.
* **UNKNOWN** (wildcard cuts) — ambiguous: the verdict depends on holes
  the family leaves open.  The scheduler *splits* on the hole that cut
  shallowest (:attr:`~repro.mc.result.VerificationResult.cut_holes`) and
  re-checks the children, whose check vectors gain a concrete digit.

This is the `SynthesizerAR` abstraction-refinement shape from PAYNT,
transplanted onto the paper's wildcard kernel: the wildcard-cut states a
prefix checkpoint records are exactly the split frontier, so family
checks compose with prefix reuse (a child resumes its parent's
checkpoint), packed states, symmetry, and POR rather than replacing any
of them.

Everything here is pure data + arithmetic; the scheduler that drives
worklists of families lives in :mod:`repro.core.engine` and the
distributed sharding in :mod:`repro.dist`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.candidate import WILDCARD, CandidateVector
from repro.errors import CandidateError

#: wire form of a family: one sorted option tuple per hole position
WireFamily = Tuple[Tuple[int, ...], ...]


class HoleFamily:
    """An immutable per-hole subset of candidate options.

    ``options[i]`` is the sorted, duplicate-free tuple of action indices
    still admitted at hole position ``i`` (discovery order, like
    candidate digits).  The family denotes the cartesian product of its
    option subsets; a position whose subset is a singleton is *fixed* and
    appears concretely in :meth:`check_vector`, every other position is
    checked as a wildcard.
    """

    __slots__ = ("options", "_hash")

    def __init__(self, options: Sequence[Sequence[int]]) -> None:
        normalised: List[Tuple[int, ...]] = []
        for position, subset in enumerate(options):
            ordered = tuple(sorted(set(subset)))
            if not ordered:
                raise CandidateError(
                    f"family has an empty option subset at position {position}"
                )
            if ordered[0] < 0:
                raise CandidateError(
                    f"family option indices must be non-negative "
                    f"(position {position})"
                )
            normalised.append(ordered)
        self.options: WireFamily = tuple(normalised)
        self._hash = hash(self.options)

    # -- construction -------------------------------------------------------

    @classmethod
    def full(cls, radices: Sequence[int]) -> "HoleFamily":
        """The family of *every* completion: all options at every hole."""
        return cls([tuple(range(r)) for r in radices])

    @classmethod
    def singleton(cls, digits: Sequence[int]) -> "HoleFamily":
        """The one-member family of a fully-assigned candidate."""
        return cls([(digit,) for digit in digits])

    @classmethod
    def from_wire(cls, wire: WireFamily) -> "HoleFamily":
        """Rebuild from :attr:`options` shipped across a process boundary."""
        return cls(wire)

    # -- basic views --------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of hole positions the family constrains."""
        return len(self.options)

    @property
    def size(self) -> int:
        """Number of member candidates: prod(len(subset))."""
        total = 1
        for subset in self.options:
            total *= len(subset)
        return total

    @property
    def is_singleton(self) -> bool:
        """True when exactly one member remains."""
        return all(len(subset) == 1 for subset in self.options)

    def multi_positions(self) -> Tuple[int, ...]:
        """Positions still admitting more than one option."""
        return tuple(
            position
            for position, subset in enumerate(self.options)
            if len(subset) > 1
        )

    def check_vector(self) -> CandidateVector:
        """The quotient's resolver input: fixed digits, wildcards elsewhere."""
        return CandidateVector(
            tuple(
                subset[0] if len(subset) == 1 else WILDCARD
                for subset in self.options
            )
        )

    def check_digits(self) -> Tuple:
        """The entries of :meth:`check_vector` (digit or ``WILDCARD``)."""
        return self.check_vector().entries

    def members(self) -> Iterator[Tuple[int, ...]]:
        """Every member candidate, in mixed-radix order over the subsets.

        The *last* position varies fastest, matching the 1-by-1
        enumerator's digit order, so member streams are comparable across
        the two schedulers.
        """
        width = self.width
        if width == 0:
            yield ()
            return
        counters = [0] * width
        options = self.options
        while True:
            yield tuple(options[i][counters[i]] for i in range(width))
            position = width - 1
            while position >= 0:
                counters[position] += 1
                if counters[position] < len(options[position]):
                    break
                counters[position] = 0
                position -= 1
            if position < 0:
                return

    def contains(self, digits: Sequence[int]) -> bool:
        """Is the fully-assigned candidate a member of this family?"""
        if len(digits) != self.width:
            return False
        return all(
            digit in subset for digit, subset in zip(digits, self.options)
        )

    # -- refinement ---------------------------------------------------------

    def split(self, position: int) -> Tuple["HoleFamily", ...]:
        """Partition on ``position``: one child per remaining option.

        Children are returned in ascending option order; they are
        pairwise disjoint and their union is exactly the parent.  Each
        child's check vector gains a concrete digit at ``position``, so
        re-checking a child always makes progress.
        """
        subset = self.options[position]
        if len(subset) < 2:
            raise CandidateError(
                f"cannot split position {position}: subset {subset} is "
                f"already a singleton"
            )
        children = []
        for option in subset:
            options = list(self.options)
            options[position] = (option,)
            children.append(HoleFamily(options))
        return tuple(children)

    def without(self, position: int, option: int) -> Optional["HoleFamily"]:
        """The family minus every member choosing ``option`` at ``position``.

        Returns ``None`` when that removal empties the subset (i.e. the
        whole family chose ``option`` there).
        """
        subset = self.options[position]
        if option not in subset:
            return self
        remaining = tuple(o for o in subset if o != option)
        if not remaining:
            return None
        options = list(self.options)
        options[position] = remaining
        return HoleFamily(options)

    # -- identity -----------------------------------------------------------

    def to_wire(self) -> WireFamily:
        """Picklable/shippable form; :meth:`from_wire` round-trips it."""
        return self.options

    def digest(self) -> str:
        """JSON-stable content digest, identical across processes.

        The digest hashes the canonical JSON rendering of the sorted
        option subsets — no hash randomisation, no object identity — so
        corpus files and distributed shard journals can name families
        byte-stably.
        """
        payload = json.dumps(
            [list(subset) for subset in self.options],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HoleFamily):
            return NotImplemented
        return self.options == other.options

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            str(subset[0]) if len(subset) == 1 else
            "{" + ",".join(map(str, subset)) + "}"
            for subset in self.options
        )
        return f"HoleFamily([{inner}])"


def plan_family_shards(
    radices: Sequence[int], target: int
) -> Tuple[HoleFamily, ...]:
    """Pre-split the full family into at least ``target`` disjoint shards.

    The distributed coordinator cannot grow a shared worklist across
    process boundaries, so it splits the root family *up front* and
    hands each worker batch a contiguous slice of the shard list.  The
    split is level-by-level at the lowest multi-option position, so the
    result is deterministic, partitions the full space exactly, and
    stays aligned with the sequential scheduler's split order (children
    in ascending option order).  The count may overshoot ``target`` by
    up to one radix factor; that only means slightly smaller batches.
    """
    shards: List[HoleFamily] = [HoleFamily.full(radices)]
    while len(shards) < target:
        expanded: List[HoleFamily] = []
        split_any = False
        for shard in shards:
            multi = shard.multi_positions()
            if multi:
                expanded.extend(shard.split(multi[0]))
                split_any = True
            else:
                expanded.append(shard)
        shards = expanded
        if not split_any:
            break
    return tuple(shards)


def apply_pattern(
    family: HoleFamily, constraints: Sequence[Tuple[int, int]]
) -> Tuple[Optional[HoleFamily], int]:
    """Narrow ``family`` against one pruning pattern.

    A pattern (a conjunction of ``(position, action)`` constraints)
    partitions the family's members into matched and unmatched.  Exact
    narrowing is only cheap when the matched slice is a sub-product:

    * no constraint touches the family (wrong position, a fixed position
      disagreeing, or an option the subset no longer admits) — nothing
      matches: ``(family, 0)``;
    * every constraint is satisfied by a *fixed* position — everything
      matches: ``(None, family.size)``;
    * exactly one constraint lands on a multi-option position (the rest
      fixed-satisfied) — the matched slice is the sub-family choosing
      that option there, and removing it keeps the family a product:
      ``(narrowed, matched_count)``;
    * two or more constraints land on multi-option positions — the
      matched set is not a sub-product, so the family is returned
      unchanged and the pattern is left for descendants to apply (after
      splits fix more positions).  Sound for fail *and* success tables:
      unmatched members are merely re-examined, never skipped.

    Returns ``(remaining_family_or_None, members_removed)``.
    """
    free: List[Tuple[int, int]] = []
    for position, action in constraints:
        if position >= family.width:
            return family, 0
        subset = family.options[position]
        if action not in subset:
            return family, 0
        if len(subset) > 1:
            free.append((position, action))
    if not free:
        return None, family.size
    if len(free) > 1:
        return family, 0
    position, action = free[0]
    removed = family.size // len(family.options[position])
    narrowed = family.without(position, action)
    return narrowed, removed


def narrow_family(
    family: HoleFamily,
    fail_constraints: Sequence[Sequence[Tuple[int, int]]],
    success_constraints: Sequence[Sequence[Tuple[int, int]]],
) -> Tuple[Optional[HoleFamily], int, int]:
    """Drive :func:`apply_pattern` to a fixpoint over both tables.

    Each application either leaves the family unchanged or strictly
    shrinks it, so iterating the pattern lists until a full round changes
    nothing terminates.  Re-running matters: removing an option can turn
    a multi-option position into a fixed one, unlocking patterns that
    previously had two free constraints.

    Returns ``(remaining_family_or_None, members_pruned_as_failing,
    members_skipped_as_succeeding)``.
    """
    pruned = 0
    skipped = 0
    current: Optional[HoleFamily] = family
    changed = True
    while changed and current is not None:
        changed = False
        for constraints in fail_constraints:
            if current is None:
                break
            narrowed, removed = apply_pattern(current, constraints)
            if removed:
                pruned += removed
                changed = True
                current = narrowed
        for constraints in success_constraints:
            if current is None:
                break
            narrowed, removed = apply_pattern(current, constraints)
            if removed:
                skipped += removed
                changed = True
                current = narrowed
    return current, pruned, skipped
