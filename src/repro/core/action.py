"""Actions: the designer-provided pure functions that fill holes.

The paper: "for each hole a pre-selected set of pure functions (with
arbitrary arguments) can be selected to be enumerated by the synthesizer"
— e.g. coherence-protocol actions like "respond to requester with data",
similar to SLICC actions.

An :class:`Action` is a named wrapper around an arbitrary callable.  The
synthesiser never inspects the callable; it only enumerates over a hole's
ordered action domain.  Purity (no hidden mutable state) is the designer's
obligation — an impure action would make verification results meaningless.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Action:
    """A named pure function usable as a hole filling.

    Args:
        name: unique within a hole's domain; appears in reports and in the
            candidate notation ``<1@name, ...>``.
        fn: the callable invoked by the rule body; ``None`` for marker
            actions whose meaning the rule body interprets by name (e.g.
            a "next state" action that is just a state label).
        payload: arbitrary static data the rule body may interpret
            (e.g. the target state for "next state" actions).
    """

    __slots__ = ("name", "fn", "payload")

    def __init__(self, name: str, fn: Optional[Callable[..., Any]] = None,
                 payload: Any = None) -> None:
        if not name:
            raise ValueError("action name must be non-empty")
        self.name = name
        self.fn = fn
        self.payload = payload

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        if self.fn is None:
            raise TypeError(
                f"action {self.name!r} has no callable; interpret its payload instead"
            )
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:
        return f"Action({self.name!r})"


def action(name: str) -> Callable[[Callable[..., Any]], Action]:
    """Decorator: ``@action("send_data")`` wraps a function as an Action."""

    def decorate(fn: Callable[..., Any]) -> Action:
        return Action(name, fn)

    return decorate
