"""Candidate pruning: the paper's key contribution.

When a candidate fails, its configuration — including wildcard entries for
holes discovered but not yet assigned — is recorded as a *pruning pattern*.
Soundness (paper, Section II): if candidate ``C`` fails with an error trace
executing the hole subset ``Ct ⊆ C``, every ``C'`` with ``Ct ⊆ C'`` fails
with the same trace.  A pattern therefore constrains only the non-wildcard
positions; any candidate agreeing on all constrained positions is inferred
to fail without model checking.

Two matching engines are provided:

* :meth:`PruningTable.matches` — flat per-candidate matching, the behaviour
  of the paper's C++ lookup table.  Fine for millions of candidates in C++;
  too slow in CPython for the billion-candidate MSI-large space.
* :class:`DfsMatcher` — an incremental matcher driven by the subtree-
  skipping enumerator (:mod:`repro.core.enumeration`).  Digits are pushed
  and popped in position order; the instant every constraint of a pattern is
  satisfied, the whole subtree below the pattern's last constrained position
  is skipped and its size counted analytically.  Patterns may be added
  mid-walk (from this thread's own failures or from other threads), which is
  how parallel workers "make use of another thread's registered patterns as
  soon as they become available" (paper, Section II, Parallel Synthesis).

The same machinery is reused for *success patterns* (solutions found in an
earlier pass whose unconstrained holes are provably unreachable and hence
don't-cares): matching candidates are skipped without being re-verified or
double-counted.

Conflict generalisation (:func:`generalise_failure`) strengthens the
recorded failure patterns beyond the paper: instead of constraining every
assigned position of the failed candidate, the counterexample trace is
*replayed* to find the exact hole subset it executes — the minimal conflict
— and only those positions are constrained.  Because the pattern's highest
constrained position bounds the shortest assignment prefix that already
forces the counterexample, the subtree-skipping enumerator can discard the
entire subtree below that prefix, which is exponentially larger than what
the full-width pattern could cut.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.candidate import CandidateVector
from repro.errors import WildcardEncountered
from repro.mc.context import ExecutionContext
from repro.mc.result import FailureKind, VerificationResult


class PruningPattern:
    """An immutable conjunction of (position, action_index) constraints."""

    __slots__ = ("constraints", "max_position", "_hash")

    def __init__(self, constraints: Iterable[Tuple[int, int]]) -> None:
        ordered = tuple(sorted(constraints))
        positions = [position for position, _action in ordered]
        if len(set(positions)) != len(positions):
            raise ValueError("pattern constrains a position twice")
        for position, action in ordered:
            if position < 0 or action < 0:
                raise ValueError("pattern constraints must be non-negative")
        self.constraints = ordered
        self.max_position = positions[-1] if positions else -1
        self._hash = hash(ordered)

    @classmethod
    def from_candidate(cls, vector: CandidateVector) -> "PruningPattern":
        """Pattern recording a failed candidate: its non-wildcard entries."""
        return cls(vector.constraints())

    @property
    def is_empty(self) -> bool:
        """An empty pattern matches everything: the model is inherently faulty."""
        return not self.constraints

    def matches(self, vector: CandidateVector) -> bool:
        """Does ``vector`` satisfy every constraint of this pattern?

        Wildcard entries in the candidate do *not* satisfy constraints: a
        pattern constraining a position the candidate leaves wildcard is not
        (yet) a certain failure for it.
        """
        for position, action in self.constraints:
            if vector.action_index(position) != action:
                return False
        return True

    def subsumes(self, other: "PruningPattern") -> bool:
        """True if every candidate matched by ``other`` is matched by self."""
        return set(self.constraints) <= set(other.constraints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PruningPattern):
            return NotImplemented
        return self.constraints == other.constraints

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}@{a}" for p, a in self.constraints)
        return f"PruningPattern({inner})"


class PruningTable:
    """A versioned, thread-safe store of pruning patterns.

    ``version`` increases with every accepted pattern; matchers track the
    version up to which they have integrated patterns and fetch the delta
    with :meth:`patterns_since`.
    """

    def __init__(self, subsumption: bool = True) -> None:
        self._lock = threading.Lock()
        self._patterns: List[PruningPattern] = []
        self._seen: set = set()
        self._subsumption = subsumption

    def add(self, pattern: PruningPattern) -> bool:
        """Insert a pattern; returns False if it was redundant.

        With subsumption enabled, a pattern already implied by a stored
        pattern is rejected (keeping the table small); stored patterns that
        the new pattern subsumes are *not* removed (removal would invalidate
        matcher snapshots; the duplicate work is only a slightly larger
        table).
        """
        with self._lock:
            if pattern.constraints in self._seen:
                return False
            if self._subsumption:
                for existing in self._patterns:
                    if existing.subsumes(pattern):
                        return False
            self._patterns.append(pattern)
            self._seen.add(pattern.constraints)
            return True

    def __len__(self) -> int:
        return len(self._patterns)

    @property
    def version(self) -> int:
        """Monotonic counter of accepted patterns (for delta sync)."""
        return len(self._patterns)

    def patterns_since(self, version: int) -> List[PruningPattern]:
        """Patterns added after ``version`` (a past value of :attr:`version`)."""
        with self._lock:
            return self._patterns[version:]

    def constraints_since(
        self, version: int = 0
    ) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Wire form of :meth:`patterns_since`: bare constraint tuples.

        The distributed backend ships these across process boundaries
        (coordinator snapshots/deltas out, worker discoveries back) instead
        of pickling pattern objects.
        """
        with self._lock:
            return tuple(pattern.constraints for pattern in self._patterns[version:])

    def all_patterns(self) -> List[PruningPattern]:
        """Snapshot of every stored pattern."""
        with self._lock:
            return list(self._patterns)

    def matches(self, vector: CandidateVector) -> Optional[PruningPattern]:
        """Flat scan: first stored pattern matching ``vector``, if any."""
        with self._lock:
            snapshot = list(self._patterns)
        for pattern in snapshot:
            if pattern.matches(vector):
                return pattern
        return None


class DfsMatcher:
    """Incremental pattern matcher for position-ordered DFS enumeration.

    The enumerator pushes digits in increasing position order and pops them
    on backtrack.  Each stored pattern keeps a count of unsatisfied
    constraints; a push of ``(position, action)`` decrements the count of
    every pattern constraining exactly that pair.  A pattern *fires* when
    its count reaches zero — which, because positions are pushed in order,
    can only happen while pushing its maximum constrained position — and the
    enumerator then skips the entire subtree.

    Patterns may be added mid-walk via :meth:`integrate`, passing the digits
    currently on the DFS path so the new pattern's counter reflects the
    constraints that path already satisfies.  A pattern whose constraints
    are already fully satisfied at integration time is tracked through the
    ``matched_count`` invariant: the matcher maintains the number of
    patterns with zero unsatisfied constraints, so :meth:`push` (and
    :attr:`any_matched`) report a match regardless of *when* the pattern
    completed.
    """

    def __init__(self, patterns: Iterable[PruningPattern] = ()) -> None:
        self._patterns: List[PruningPattern] = []
        self._remaining: List[int] = []
        self._index: Dict[Tuple[int, int], List[int]] = {}
        self._matched_count = 0
        for pattern in patterns:
            self._install(pattern, current_path=())

    def _install(self, pattern: PruningPattern, current_path: Sequence[int]) -> None:
        pattern_id = len(self._patterns)
        satisfied = 0
        for position, action in pattern.constraints:
            if position < len(current_path) and current_path[position] == action:
                satisfied += 1
            self._index.setdefault((position, action), []).append(pattern_id)
        self._patterns.append(pattern)
        remaining = len(pattern.constraints) - satisfied
        self._remaining.append(remaining)
        if remaining == 0:
            self._matched_count += 1

    def integrate(self, patterns: Iterable[PruningPattern],
                  current_path: Sequence[int]) -> None:
        """Add patterns discovered mid-walk (own failures or other threads')."""
        for pattern in patterns:
            self._install(pattern, current_path)

    @property
    def any_matched(self) -> bool:
        """True if some pattern is fully satisfied by the current DFS path."""
        return self._matched_count > 0

    def push(self, position: int, action: int) -> bool:
        """Record digit ``action`` at ``position``; True if a pattern matches.

        Returning True means the entire subtree below the current path is
        inferred to fail (or, for success tables, to succeed) — the
        enumerator should skip it.
        """
        remaining = self._remaining
        for pattern_id in self._index.get((position, action), ()):
            remaining[pattern_id] -= 1
            if remaining[pattern_id] == 0:
                self._matched_count += 1
        return self._matched_count > 0

    def pop(self, position: int, action: int) -> None:
        """Undo the matching effect of the corresponding :meth:`push`."""
        remaining = self._remaining
        for pattern_id in self._index.get((position, action), ()):
            if remaining[pattern_id] == 0:
                self._matched_count -= 1
            remaining[pattern_id] += 1

    def fully_matched(self, path: Sequence[int]) -> bool:
        """Non-incremental check of a complete path (used in tests)."""
        for pattern, _remaining in zip(self._patterns, self._remaining):
            if all(
                position < len(path) and path[position] == action
                for position, action in pattern.constraints
            ):
                return True
        return False

    @property
    def pattern_count(self) -> int:
        """Patterns currently integrated into the matcher."""
        return len(self._patterns)


def generalise_failure(
    system,
    registry,
    digits: Sequence[int],
    result: VerificationResult,
    telemetry=None,
) -> Optional[PruningPattern]:
    """Minimal-conflict pattern for a failed candidate, via trace replay.

    ``telemetry`` (a ``repro.obs.Telemetry``, optional) wraps the replay
    in a ``generalise`` trace span recording whether a conflict was
    found and how narrow it is — replay cost is one of the phases the
    ``stats`` subcommand attributes.

    Soundness is the paper's Section II argument made exact: the
    counterexample trace is replayed firing by firing under the failed
    candidate's assignment, recording precisely which holes execute.  Any
    candidate agreeing on those positions replays the same trace (guards
    are hole-free; firings that resolved no further holes are
    assignment-independent) and therefore contains the same violation, so
    the returned pattern constrains *only* the replayed conflict — every
    other position becomes a wildcard, including assigned positions the
    failure never touched.

    For DEADLOCK failures the conflict additionally includes every hole
    executed by the (successor-less) rule firings attempted at the final
    state: a candidate disagreeing there could enable an escape.

    Returns ``None`` — callers fall back to the full-width pattern — when
    no trace is available (COVERAGE failures, ``record_traces=False``) or
    the replay cannot reproduce the trace (nondeterministic rule bodies,
    an unexpected wildcard).  An *empty* pattern is a genuine result: the
    trace executed no holes at all, so the skeleton fails identically
    under every assignment (the engine reports an inherent failure).
    """
    if telemetry is not None and telemetry.enabled:
        with telemetry.span("generalise") as span:
            pattern = _generalise_failure(system, registry, digits, result)
            span.set(
                generalised=pattern is not None,
                width=len(pattern.constraints) if pattern is not None else None,
            )
            return pattern
    return _generalise_failure(system, registry, digits, result)


def _generalise_failure(
    system,
    registry,
    digits: Sequence[int],
    result: VerificationResult,
) -> Optional[PruningPattern]:
    trace = result.trace
    if trace is None or result.failure_kind is FailureKind.COVERAGE:
        return None
    from repro.core.discovery import CandidateResolver

    vector = CandidateVector.from_digits(tuple(digits))
    ctx = ExecutionContext(CandidateResolver(registry, vector))
    rules_by_name = {rule.name: rule for rule in system.rules}
    state = trace.initial_state
    executed: set = set()
    for step in trace.steps[1:]:
        rule = rules_by_name.get(step.rule_name)
        if rule is None:
            return None
        ctx.begin_firing()
        try:
            successors = rule.fire(state, ctx)
        except WildcardEncountered:
            return None
        executed |= ctx.firing_executed_holes
        if not any(successor == step.state for successor in successors):
            return None
        state = step.state
    if result.failure_kind is FailureKind.DEADLOCK:
        for rule in system.rules:
            if not rule.guard(state):
                continue
            ctx.begin_firing()
            try:
                successors = rule.fire(state, ctx)
            except WildcardEncountered:
                return None
            if successors:
                return None  # not the deadlock the verdict reported
            executed |= ctx.firing_executed_holes
    constraints = []
    for hole in executed:
        position = registry.position_of(hole, register=False)
        if position is None or position >= len(digits):
            return None
        constraints.append((position, digits[position]))
    return PruningPattern(constraints)
