"""Parallel synthesis (Section II, "Parallel Synthesis").

Distinct protocol candidates are model checked independently; the engine
splits each pass's candidate index space into contiguous ranges, one per
worker thread.  Exactly as in the paper:

* the *initial* run is dispatched on a single thread to discover the first
  set of holes;
* a global candidate vector (:class:`~repro.core.discovery.HoleRegistry`)
  registers newly discovered holes; its read path is lock-free;
* the pruning-pattern table is shared, so every worker benefits from
  patterns registered by the others as soon as it next looks — which is why
  multi-threaded runs evaluate slightly *fewer* candidates than sequential
  ones (compare Table I rows 2 vs 3 and 5 vs 6);
* when all workers finish the current pass, the global vector provides the
  next pass's (larger) candidate space.

**This backend is an algorithmic reproduction only.**  The paper uses C++
threads and reports 1.5x (MSI-small) / 2.5x (MSI-large) wall-clock speedups
at 4 threads; CPython's GIL serialises our pure-Python model checking, so
this thread backend reproduces the algorithmic effects (work splitting,
shared-pattern savings, evaluated-candidate counts) but *not* the wall-clock
speedups — at 4 threads it is typically no faster than sequential.  For real
multi-core speedups use the process backend
(:class:`repro.dist.DistributedSynthesisEngine`, CLI
``--backend processes``), which shards candidate batches across worker
processes and exchanges pruning patterns at batch boundaries.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.core.engine import (
    FAIL_TAG,
    SUCCESS_TAG,
    SynthesisConfig,
    SynthesisCore,
    SynthesisObserver,
    _FamilyPassCounters,
    _PassWalker,
    _StopSynthesis,
    resolve_telemetry,
)
from repro.core.family import HoleFamily
from repro.core.report import SynthesisReport
from repro.mc.kernel import ExplorationCheckpoint
from repro.mc.system import TransitionSystem
from repro.obs import Telemetry
from repro.util.itertools2 import product_size, split_ranges
from repro.util.timing import Stopwatch


class ParallelSynthesisEngine:
    """Pass-parallel synthesis driver over a shared pruning table."""

    def __init__(
        self,
        system: TransitionSystem,
        config: Optional[SynthesisConfig] = None,
        threads: int = 4,
        observer: Optional[SynthesisObserver] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.system = system
        self.config = config or SynthesisConfig()
        self.threads = threads
        self.telemetry, self._owns_telemetry = resolve_telemetry(
            self.config, telemetry
        )
        # The verdict store is consulted read-only here: evaluations run
        # outside the shared lock, so recording would race the registry
        # snapshot taken around each model-checker run.  Thread runs still
        # replay verdicts recorded by sequential/process runs.
        self.core = SynthesisCore(
            system, self.config, observer, telemetry=self.telemetry,
            store_readonly=True,
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def run(self) -> SynthesisReport:
        """Run the thread-parallel synthesis and return the report."""
        core = self.core
        report = SynthesisReport(
            system_name=self.system.name,
            pruning=self.config.pruning,
            threads=self.threads,
            backend="threads",
            explorer=self.config.explorer,
        )
        watch = Stopwatch.started()
        tele = self.telemetry
        with tele.span(
            "synthesis", system=self.system.name, backend="threads",
            threads=self.threads,
        ) as span:
            if tele.enabled:
                # Worker threads start with empty span stacks; parent
                # their evaluate spans under the run's root span.
                tele.tracer.default_parent = span.span_id
            try:
                core.run_initial()
            except _StopSynthesis:
                self._stop.set()
            if not self._stop.is_set():
                self._run_passes(report)
            if tele.enabled:
                tele.tracer.default_parent = None
                span.set(
                    evaluated=core.evaluated, solutions=len(core.solutions)
                )
        report.elapsed_seconds = watch.elapsed
        report = core.finalize_report(report)
        core.close_store()
        if self._owns_telemetry:
            tele.close()
        return report

    def _run_passes(self, report: SynthesisReport) -> None:
        core = self.core
        previous_count = 0
        while not self._stop.is_set():
            holes = core.registry.holes
            if len(holes) == previous_count:
                break
            if (
                self.config.max_passes is not None
                and report.passes >= self.config.max_passes
            ):
                core.stopped_early = True
                break
            first_new = previous_count
            previous_count = len(holes)
            report.passes += 1
            core.observer.on_pass_started(report.passes, holes)
            radices = [hole.arity for hole in holes]
            if self.config.family_active:
                counters = _FamilyPassCounters()
                self._run_family_pass(radices, counters)
                report.covered += counters.covered
                report.pruned_failure += counters.pruned
                report.skipped_success += counters.skipped
                continue
            total = product_size(radices)
            ranges = split_ranges(total, self.threads)
            workers: List[threading.Thread] = []
            errors: List[BaseException] = []

            def work(start: int, end: int) -> None:
                try:
                    self._walk_range(radices, start, end, first_new, report)
                except _StopSynthesis:
                    self._stop.set()
                except BaseException as exc:  # surface worker crashes
                    errors.append(exc)
                    self._stop.set()

            for start, end in ranges:
                thread = threading.Thread(
                    target=work, args=(start, end), name=f"verc3-worker-{start}"
                )
                workers.append(thread)
                thread.start()
            for thread in workers:
                thread.join()
            if errors:
                raise errors[0]

    def _run_family_pass(
        self, radices: List[int], counters: _FamilyPassCounters
    ) -> None:
        """One family pass over a shared worklist drained by all workers.

        Unlike the 1-by-1 pass, family work items are produced dynamically
        (an ambiguous quotient spawns its children), so the pass cannot be
        pre-split into contiguous index ranges.  Workers instead pop from
        a condition-guarded LIFO worklist, evaluate the quotient outside
        the lock, and push children back; the pass ends when the worklist
        is empty and no worker still holds an item in flight.
        """
        core = self.core
        worklist: List[
            Tuple[HoleFamily, Optional[ExplorationCheckpoint], int]
        ] = [(HoleFamily.full(radices), None, 0)]
        cond = threading.Condition()
        in_flight = [0]
        errors: List[BaseException] = []

        def drain() -> None:
            while True:
                with cond:
                    while (
                        not worklist
                        and in_flight[0]
                        and not self._stop.is_set()
                    ):
                        cond.wait()
                    if self._stop.is_set() or not worklist:
                        return
                    family, resume, depth = worklist.pop()
                    in_flight[0] += 1
                children: Tuple = ()
                try:
                    children = core.process_family(
                        family, resume, depth, counters, lock=self._lock
                    )
                finally:
                    with cond:
                        worklist.extend(reversed(children))
                        in_flight[0] -= 1
                        cond.notify_all()

        def work() -> None:
            try:
                drain()
            except _StopSynthesis:
                self._stop.set()
            except BaseException as exc:  # surface worker crashes
                errors.append(exc)
                self._stop.set()
            finally:
                with cond:
                    cond.notify_all()

        workers = [
            threading.Thread(target=work, name=f"verc3-family-{index}")
            for index in range(self.threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        if errors:
            raise errors[0]

    def _walk_range(self, radices: List[int], start: int, end: int,
                    first_new: int, report: SynthesisReport) -> None:
        core = self.core
        walker = _PassWalker(core, radices, start, end)
        try:
            for digits in walker.enumerator:
                if self._stop.is_set():
                    raise _StopSynthesis()
                core.process_candidate(walker, digits, first_new, lock=self._lock)
        finally:
            counters = walker.counters
            with self._lock:
                report.covered += counters.covered
                report.pruned_failure += counters.skipped.get(FAIL_TAG, 0)
                report.skipped_success += counters.skipped.get(SUCCESS_TAG, 0)
