"""The synthesis engine (sequential).

Implements the full procedure of Section II ("Putting it all together"):

1. Run the model checker on the empty candidate; holes are discovered
   lazily and appended to the candidate configuration vector.
2. Enumerate passes over all currently known holes (earliest hole most
   significant); holes discovered mid-pass join as wildcards and become
   enumerable in the next pass.
3. Candidates matching a recorded failure pattern are pruned; candidates
   matching a recorded success pattern (an earlier solution whose remaining
   holes are provably unreachable) are skipped without re-verification.
4. A FAILURE verdict records the candidate configuration — including its
   wildcard entries — as a new pruning pattern; a SUCCESS verdict records a
   solution.  The procedure ends when a pass completes without discovering
   new holes.

Without pruning (``SynthesisConfig(pruning=False)``) the engine reproduces
the paper's naive baseline: undiscovered holes resolve to a *default* action
instead of cutting the branch, every fully-assigned candidate is model
checked exactly once (duplicate prefix evaluations across passes are
detected arithmetically), and no patterns are kept.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.action import Action
from repro.core.candidate import WILDCARD, CandidateVector
from repro.core.discovery import CandidateResolver, DefaultingResolver, HoleRegistry
from repro.core.enumeration import NaiveEnumerator, SubtreeEnumerator
from repro.core.family import HoleFamily, narrow_family
from repro.core.hole import Hole
from repro.core.pruning import (
    DfsMatcher,
    PruningPattern,
    PruningTable,
    generalise_failure,
)
from repro.core.report import Solution, SynthesisReport
from repro.errors import SynthesisError
from repro.mc.kernel import (
    EXPLORER_STRATEGIES,
    ExplorationCheckpoint,
    ExplorationKernel,
    ExplorationLimits,
    make_explorer,
)
from repro.mc.result import FailureKind, RunStats, Verdict, VerificationResult
from repro.mc.system import TransitionSystem
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.store import StoredRun, VerdictStore, flags_signature, system_signature
from repro.store.store import merge_assignment
from repro.util.timing import Stopwatch

FAIL_TAG = "failure"
SUCCESS_TAG = "success"

_RUN_STATS_FIELDS = frozenset(f.name for f in dataclasses.fields(RunStats))


class _StoredRunExplorer:
    """Explorer stand-in for a verdict replayed from the store.

    :meth:`SynthesisCore.handle_result` only ever asks the explorer for a
    solution fingerprint; a store hit answers with the recorded one
    (store hits are gated on its presence when fingerprints are on).
    """

    __slots__ = ("checkpoint", "_fingerprint")

    def __init__(self, fingerprint: Optional[str]) -> None:
        self.checkpoint = None
        self._fingerprint = fingerprint

    def fingerprint_visited(self) -> Optional[str]:
        return self._fingerprint


def _candidate_label(vector: CandidateVector) -> str:
    """Compact trace label for a candidate: digits, ``*`` for wildcards."""
    return ",".join(
        "*" if entry is WILDCARD else str(entry) for entry in vector.entries
    )


def resolve_telemetry(config: "SynthesisConfig", telemetry):
    """Decide an engine's telemetry once, at construction.

    Returns ``(telemetry, owns)``: a caller-supplied bundle (the CLI's,
    or the matrix runner's) is used as-is and left open; otherwise one
    is built when the config asks for it — and the engine owns it, i.e.
    must close it when the run ends.  With neither, the shared
    :data:`~repro.obs.NULL_TELEMETRY` keeps every instrumented call
    site a no-op.
    """
    if telemetry is not None:
        return telemetry, False
    if config.telemetry_active:
        return Telemetry.from_config(config), True
    return NULL_TELEMETRY, False


@dataclass
class SynthesisConfig:
    """Tunable knobs of the synthesis procedure.

    Attributes:
        pruning: enable the paper's candidate pruning (wildcard defaults,
            failure patterns); False reproduces the naive baseline.
        naive_match: match candidates one-by-one against the pattern tables
            (paper-faithful lookup) instead of subtree-skipping DFS.  The
            two are differentially tested to produce identical counts.
        generalise_conflicts: on every failure, replay the counterexample
            trace to find the minimal hole conflict it executes and record
            *that* as the pruning pattern instead of the full candidate
            width (:func:`repro.core.pruning.generalise_failure`).  Sound,
            strictly more general, and on by default; ``--no-generalise``
            on the CLI restores the paper's full-width patterns.  Like
            prefix reuse, automatically disabled when exploration
            ``limits`` are set (see :attr:`generalise_active`).
        prefix_reuse: cache the exploration of shared assignment prefixes
            (:class:`PrefixCache`) so sibling candidates resume from the
            cached frontier instead of re-exploring from the initial
            states.  Verdict-exact; automatically disabled when pruning is
            off or exploration ``limits`` are set (a truncated exploration
            depends on visit order, which resumption changes).
        prefix_cache_capacity: LRU entry cap of the prefix cache; needs to
            exceed the hole count for the chain to stay warm along one
            enumeration path.
        refined_patterns: record patterns constraining only the holes
            executed on the minimal error trace instead of the full
            candidate prefix — a strictly stronger, still sound pruning
            (our extension; benchmarked as an ablation).  Subsumed by
            ``generalise_conflicts`` in practice; kept as the
            kernel-tracking-based fallback and ablation.
        success_patterns: memoise solutions so later passes don't re-verify
            extensions of a known solution whose extra holes are don't-cares.
        subsumption: drop new patterns already implied by stored ones.
        default_action_index: naive-mode default action per hole.
        limits: per-run exploration caps (safety net).
        solution_limit: stop after this many solutions (None = exhaustive).
        max_evaluations: stop after this many model-checker runs.
        max_passes: cap on enumeration passes.
        compute_fingerprints: fingerprint each solution's visited-state set
            (enables behavioural grouping; costs one pass over the states).
        record_traces: keep error traces (disable to save memory).
        explorer: frontier strategy for candidate model checking — a name
            registered in :data:`repro.mc.kernel.EXPLORER_STRATEGIES`
            (``"bfs"``, the default and the paper's choice because minimal
            traces prune best, or ``"dfs"``).  Shared verbatim with the
            thread and process backends.
        partial_order: enable footprint-based partial-order reduction in
            candidate model checking (:mod:`repro.mc.footprint`).  The
            reduction is candidate-independent (ample decisions depend
            only on the state, because guards cannot resolve holes), so
            it composes with prefix reuse: checkpoints record their
            reduction mode and the kernel refuses a cross-mode resume.
            Like the other sound accelerations it deactivates itself
            under exploration ``limits`` (see :attr:`partial_order_active`).
            Off by default: the footprint probe costs seconds per system,
            which one-shot catalog-size runs never amortise — POR's win
            at these scales is states visited (memory and the large-model
            trajectory), not wall-clock; opt in with ``--por`` and ablate
            back with ``--no-por``.
        packed: run candidate model checking on the packed-state kernel
            (:mod:`repro.mc.packed`) when the system carries a codec
            spec: states are encoded into fixed-layout vectors, interned
            in a slab, and canonicalised by table-driven index/value
            remaps, with guard masks and rule firings memoised per
            interned state.  Exact by construction — the codec's rename
            tables evaluate the very expressions the object permuter
            applies — so verdicts, state counts, and traces are
            identical to the object path (traces decode back to real
            states for replay).  On by default; ``--no-packed`` ablates
            back to the object path, and systems without a codec spec
            fall back silently.
        family: drive synthesis as a worklist of hole *families*
            (:mod:`repro.core.family`) instead of a flat candidate
            enumeration: each family is model checked once as a quotient
            with its unfixed holes left as wildcards, all-fail families
            prune through the conflict-generalisation path, all-pass
            families yield every member as a solution from the single
            run, and ambiguous families split on the hole that cut the
            quotient shallowest.  Composes with symmetry, packed states,
            POR, and prefix reuse (children resume their parent family's
            checkpoint).  Requires pruning-mode semantics and, like
            prefix reuse, auto-inactivates under exploration ``limits``
            (see :attr:`family_active`).  Off by default.
        telemetry: enable the observability layer (:mod:`repro.obs`) —
            metrics registry, trace spans, kernel phase attribution —
            even without a trace file (metrics land in the report and
            ``--metrics-out``).  Off by default: the disabled path costs
            a setup-time decision plus one predicate per state pop.
        trace_path: write structured trace events (JSONL) to this path;
            implies telemetry.  Workers of the process backend write to
            ``<trace_path>.worker-<id>``.
        progress: emit throttled live progress lines to stderr (and
            ``progress`` trace events); implies telemetry.
        progress_interval: minimum seconds between progress emissions
            (default 1.0; must be positive).
        store_path: directory of a durable cross-run verdict store
            (:mod:`repro.store`).  Every wildcard-free candidate
            evaluation consults the store before model checking and
            records its outcome after; repeated runs, overlapping matrix
            cells, and warm benchmark passes replay verdicts instead of
            re-exploring.  ``None`` (default) disables the store.  Like
            the other accelerations, the store stands down under
            exploration ``limits`` (see :attr:`store_active`): truncated
            verdicts depend on the limit values, which the store key
            does not encode.
    """

    pruning: bool = True
    naive_match: bool = False
    generalise_conflicts: bool = True
    prefix_reuse: bool = True
    prefix_cache_capacity: int = 64
    refined_patterns: bool = False
    success_patterns: bool = True
    subsumption: bool = True
    default_action_index: int = 0
    limits: Optional[ExplorationLimits] = None
    solution_limit: Optional[int] = None
    max_evaluations: Optional[int] = None
    max_passes: Optional[int] = None
    compute_fingerprints: bool = False
    record_traces: bool = True
    explorer: str = "bfs"
    partial_order: bool = False
    packed: bool = True
    family: bool = False
    telemetry: bool = False
    trace_path: Optional[str] = None
    progress: bool = False
    progress_interval: float = 1.0
    store_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.explorer not in EXPLORER_STRATEGIES:
            raise SynthesisError(
                f"unknown explorer {self.explorer!r}; available: "
                f"{', '.join(sorted(EXPLORER_STRATEGIES))}"
            )
        if not isinstance(self.partial_order, bool):
            raise SynthesisError(
                f"partial_order must be a bool, got {self.partial_order!r}"
            )
        if not isinstance(self.packed, bool):
            raise SynthesisError(
                f"packed must be a bool, got {self.packed!r}"
            )
        if not isinstance(self.family, bool):
            raise SynthesisError(
                f"family must be a bool, got {self.family!r}"
            )
        for knob in ("solution_limit", "max_evaluations", "max_passes"):
            value = getattr(self, knob)
            if value is not None and value < 0:
                raise SynthesisError(f"{knob} must be non-negative, got {value}")
        if self.default_action_index < 0:
            raise SynthesisError(
                f"default_action_index must be non-negative, "
                f"got {self.default_action_index}"
            )
        if self.prefix_cache_capacity < 1:
            raise SynthesisError(
                f"prefix_cache_capacity must be positive, "
                f"got {self.prefix_cache_capacity}"
            )
        for knob in ("telemetry", "progress"):
            if not isinstance(getattr(self, knob), bool):
                raise SynthesisError(
                    f"{knob} must be a bool, got {getattr(self, knob)!r}"
                )
        if self.trace_path is not None and not isinstance(self.trace_path, str):
            raise SynthesisError(
                f"trace_path must be a string path or None, "
                f"got {self.trace_path!r}"
            )
        if self.store_path is not None and not isinstance(self.store_path, str):
            raise SynthesisError(
                f"store_path must be a string path or None, "
                f"got {self.store_path!r}"
            )
        if (
            not isinstance(self.progress_interval, (int, float))
            or isinstance(self.progress_interval, bool)
            or not self.progress_interval > 0
        ):
            raise SynthesisError(
                f"progress_interval must be a positive number, "
                f"got {self.progress_interval!r}"
            )

    @property
    def telemetry_active(self) -> bool:
        """Whether any observability feature is requested.

        A trace path or progress request implies telemetry — there is
        nothing to write otherwise — so the engines key their setup-time
        decision off this property, not the raw flag.
        """
        return self.telemetry or self.trace_path is not None or self.progress

    @property
    def _limits_unset(self) -> bool:
        limits = self.limits
        return limits is None or (
            limits.max_states is None and limits.max_depth is None
        )

    @property
    def prefix_reuse_active(self) -> bool:
        """Whether candidate evaluations may use the prefix cache.

        Reuse requires pruning-mode (wildcard) semantics, and exploration
        limits disable it: a truncated exploration's verdict depends on
        visit order, which resumption changes.
        """
        return self.pruning and self.prefix_reuse and self._limits_unset

    @property
    def partial_order_active(self) -> bool:
        """Whether candidate evaluations may use partial-order reduction.

        Exploration limits disable it: a truncated exploration's verdict
        depends on visit order and coverage, which a reduced expansion
        changes — POR is only verdict-exact on complete explorations.
        """
        return self.partial_order and self._limits_unset

    @property
    def generalise_active(self) -> bool:
        """Whether failure patterns may be conflict-generalised.

        Exploration limits disable generalisation for the same reason they
        disable prefix reuse: a sibling matching the generalised conflict
        is guaranteed to *contain* the counterexample, but a truncated
        exploration is not guaranteed to reach it within budget, so its
        own verdict could have been UNKNOWN.  Full-width patterns keep
        that exposure to cross-pass extensions only (the paper's original
        caveat); generalisation would widen it to same-pass siblings.
        """
        return self.generalise_conflicts and self._limits_unset

    @property
    def family_active(self) -> bool:
        """Whether synthesis runs as a family worklist.

        Families need pruning-mode (wildcard) semantics — a quotient run
        *is* a wildcard run — and exploration limits disable them for
        the same reason they disable prefix reuse: a truncated quotient's
        verdict depends on visit order, so it cannot speak for every
        member.  When inactive, synthesis falls back to the 1-by-1
        enumeration silently (the CLI warns).
        """
        return self.family and self.pruning and self._limits_unset

    @property
    def store_active(self) -> bool:
        """Whether candidate evaluations may consult the verdict store.

        A truncated exploration's verdict depends on the limit values,
        which the store key does not encode, so exploration limits stand
        the store down like every other acceleration.
        """
        return self.store_path is not None and self._limits_unset

    def resolved_accelerations(self) -> Tuple["AccelerationStatus", ...]:
        """The requested-vs-active resolution of every acceleration knob.

        This is the single stand-down table; the individual ``*_active``
        properties are its per-knob accessors and the CLI's warning text
        reads from the ``reason`` column here.

        ========================  ==============================================
        acceleration              stands down when
        ========================  ==============================================
        ``generalise_conflicts``  exploration limits are set (a truncated
                                  sibling exploration is not guaranteed to
                                  reach the generalised counterexample)
        ``prefix_reuse``          pruning is off (no wildcard semantics), or
                                  exploration limits are set (truncated
                                  verdicts depend on visit order)
        ``partial_order``         exploration limits are set (POR is only
                                  verdict-exact on complete explorations)
        ``family``                pruning is off (a quotient run *is* a
                                  wildcard run), or exploration limits are
                                  set (a truncated quotient cannot speak for
                                  every member)
        ``store_path``            exploration limits are set (truncated
                                  verdicts depend on the limit values, which
                                  the store key does not encode)
        ========================  ==============================================
        """
        limited = not self._limits_unset
        limits_reason = "exploration limits are set"
        statuses = []

        def add(name: str, requested: bool, active: bool, reason: str) -> None:
            statuses.append(
                AccelerationStatus(
                    name=name,
                    requested=requested,
                    active=active,
                    reason="" if active or not requested else reason,
                )
            )

        add(
            "generalise_conflicts",
            self.generalise_conflicts,
            self.generalise_active,
            limits_reason,
        )
        add(
            "prefix_reuse",
            self.prefix_reuse,
            self.prefix_reuse_active,
            limits_reason if limited else "pruning is off",
        )
        add(
            "partial_order",
            self.partial_order,
            self.partial_order_active,
            limits_reason,
        )
        add(
            "family",
            self.family,
            self.family_active,
            limits_reason if limited else "pruning is off",
        )
        add(
            "store",
            self.store_path is not None,
            self.store_active,
            limits_reason,
        )
        return tuple(statuses)


class AccelerationStatus(NamedTuple):
    """One row of :meth:`SynthesisConfig.resolved_accelerations`."""

    name: str
    requested: bool
    active: bool
    #: why a requested acceleration is inactive ("" when active/unrequested)
    reason: str


class SynthesisObserver:
    """Override any subset of these no-op callbacks to watch a run.

    The Figure 2 walkthrough example uses an observer to print the paper's
    run table live.
    """

    def on_pass_started(self, pass_index: int, holes: Sequence[Hole]) -> None:
        """A new enumeration pass begins over the given holes."""

    def on_run(self, run_index: int, vector: CandidateVector,
               result: VerificationResult, holes: Sequence[Hole]) -> None:
        """A candidate was dispatched to the model checker."""

    def on_pattern(self, pattern: PruningPattern, holes: Sequence[Hole]) -> None:
        """A new failure pattern was recorded."""

    def on_solution(self, solution: Solution, holes: Sequence[Hole]) -> None:
        """A correct candidate was found."""

    def on_prune(self, digits: Tuple[int, ...], tag: str) -> None:
        """A single explicitly-visited candidate was pruned (``tag`` says why)."""


class _StopSynthesis(Exception):
    """Internal: a stop condition (solution/evaluation limit) was reached."""


class PrefixCache:
    """Thread-safe LRU store of prefix-exploration checkpoints.

    Keys are assignment-prefix digit tuples (position ``i`` of the key is
    hole ``i``'s action index; the registry's discovery order makes this
    meaning stable across passes and, by name correlation, across worker
    processes).  A value is either an
    :class:`~repro.mc.kernel.ExplorationCheckpoint` or ``None`` — a
    *negative* entry marking a prefix whose exploration already hit a
    counterexample, so siblings don't rebuild it (every extension of such
    a prefix fails its own model-checker run and records a pruning
    pattern there).  Coverage-failing prefixes are cached *positively*:
    they explored the complete wildcard-free space, so extensions resume
    to the identical verdict for free.

    Because the enumerator emits candidates in lexicographic order, the
    live entries at any moment are essentially the checkpoints along the
    current enumeration path plus a little slack; capacity only needs to
    exceed the hole count.

    Counters (under the same lock): ``hits`` — candidate evaluations that
    resumed from a checkpoint; ``builds`` — prefix explorations performed
    to create checkpoints (the cache's cost side); ``states_reused`` —
    total states candidate evaluations inherited instead of re-exploring.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, ...], Optional[ExplorationCheckpoint]]" = OrderedDict()
        self._capacity = capacity
        self.hits = 0
        self.builds = 0
        self.states_reused = 0

    def lookup(self, key: Tuple[int, ...]) -> Tuple[bool, Optional[ExplorationCheckpoint]]:
        """Return ``(found, entry)``; a found ``None`` is a negative entry."""
        with self._lock:
            if key not in self._entries:
                return False, None
            self._entries.move_to_end(key)
            return True, self._entries[key]

    def store(self, key: Tuple[int, ...],
              checkpoint: Optional[ExplorationCheckpoint]) -> None:
        """Insert or refresh an entry, evicting the oldest beyond capacity."""
        with self._lock:
            self._entries[key] = checkpoint
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def note_hit(self, states_reused: int) -> None:
        """Count one resumed candidate evaluation."""
        with self._lock:
            self.hits += 1
            self.states_reused += states_reused

    def note_build(self) -> None:
        """Count one prefix exploration performed to build a checkpoint."""
        with self._lock:
            self.builds += 1

    def counters(self) -> Tuple[int, int, int]:
        """Snapshot of ``(hits, builds, states_reused)``."""
        with self._lock:
            return self.hits, self.builds, self.states_reused

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SynthesisCore:
    """State and per-candidate logic shared by the engines.

    Thread-safety note: the registry and pattern tables are themselves
    thread-safe; counters and solution lists are only mutated under the
    caller's control (the parallel engine aggregates per-worker counters).
    """

    def __init__(
        self,
        system: TransitionSystem,
        config: SynthesisConfig,
        observer: Optional[SynthesisObserver] = None,
        registry: Optional[HoleRegistry] = None,
        prefix_cache: Optional[PrefixCache] = None,
        telemetry=None,
        store: Optional[VerdictStore] = None,
        store_readonly: bool = False,
    ) -> None:
        self.system = system
        self.config = config
        self.observer = observer or SynthesisObserver()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: metric handles are bound once here — the hot paths below do a
        #: ``None`` check and an attribute bump, never a registry lookup
        self._metric_handles = None
        if self.telemetry.enabled and self.telemetry.metrics is not None:
            metrics = self.telemetry.metrics
            self._metric_handles = {
                "evaluated": metrics.counter(
                    "synth_candidates_evaluated",
                    "candidates dispatched to the model checker"),
                "solutions": metrics.counter(
                    "synth_solutions_found", "correct completions found"),
                "states": metrics.counter(
                    "mc_states_visited",
                    "states interned across candidate runs"),
                "transitions": metrics.counter(
                    "mc_transitions_fired",
                    "rule firings across candidate runs"),
                "peak": metrics.gauge(
                    "mc_peak_states",
                    "largest single-run visited-state count"),
                "check_seconds": metrics.histogram(
                    "mc_check_seconds", "per-candidate model-check time"),
                "verdicts": {
                    name: metrics.counter(
                        "synth_verdicts", "verdicts by kind", verdict=name)
                    for name in ("success", "failure", "unknown")
                },
                "family_checked": metrics.counter(
                    "family_checked",
                    "family quotients dispatched to the model checker"),
                "family_splits": metrics.counter(
                    "family_splits", "ambiguous families split"),
                "family_avoided": metrics.counter(
                    "family_candidates_avoided",
                    "per-candidate checks avoided by family verdicts"),
                "family_depth": metrics.gauge(
                    "family_max_split_depth",
                    "deepest family-split chain reached"),
            }
        self.registry = registry if registry is not None else HoleRegistry()
        self.fail_table = PruningTable(subsumption=config.subsumption)
        self.success_table = PruningTable(subsumption=config.subsumption)
        if not config.prefix_reuse_active:
            self.prefix_cache: Optional[PrefixCache] = None
        elif prefix_cache is not None:
            # A caller-owned cache outliving this core (the process-backend
            # worker keeps one across passes; keys stay valid because the
            # canonical hole order only ever appends).
            self.prefix_cache = prefix_cache
        else:
            self.prefix_cache = PrefixCache(config.prefix_cache_capacity)
        # A caller-owned store outliving this core (the process-backend
        # worker keeps one across passes) is used as-is; otherwise the
        # core opens — and later closes — its own when the config asks.
        self._owns_store = False
        if store is not None:
            self.store: Optional[VerdictStore] = store
        elif config.store_active:
            self.store = VerdictStore(config.store_path)
            self._owns_store = True
        else:
            self.store = None
        #: read-only mode: consult but never append (the thread backend
        #: evaluates outside the shared lock, so recording there would
        #: race the registry-growth snapshot around each run)
        self.store_readonly = store_readonly
        self.store_attached = self.store is not None
        if self.store is not None:
            self._system_sig = system_signature(system)
            self._flags_sig = flags_signature(config)
        self.store_hits = 0
        self.store_writes = 0
        self.solutions: List[Solution] = []
        self.evaluated = 0
        self.deduplicated = 0
        self.verdict_counts: Dict[str, int] = {"success": 0, "failure": 0, "unknown": 0}
        #: merged prefix-cache counters from other cores (the distributed
        #: coordinator folds worker deltas in here; finalize_report adds
        #: this core's own cache counters on top)
        self.merged_prefix_counters = [0, 0, 0]  # hits, builds, states_reused
        #: partial-order reduction counters summed over this core's
        #: dispatched candidate runs (plus, on the coordinator, merged
        #: worker deltas): enabled firings deferred / reduced expansions
        self.por_rules_skipped = 0
        self.ample_states = 0
        #: largest visited-state count of any single candidate run (the
        #: high-water mark the matrix journal and report surface)
        self.peak_states = 0
        self.inherent_failure = False
        self.inherent_failure_message = ""
        self.stopped_early = False
        #: family-mode counters (all 0 under 1-by-1 enumeration):
        #: quotient runs dispatched, ambiguous splits performed, deepest
        #: split chain, and per-candidate checks a family verdict avoided
        self.family_checked = 0
        self.family_splits = 0
        self.family_max_split_depth = 0
        self.family_candidates_avoided = 0

    # -- evaluation ---------------------------------------------------------

    def make_resolver(self, vector: CandidateVector):
        """The resolver for one candidate (wildcard or defaulting mode)."""
        if self.config.pruning:
            return CandidateResolver(self.registry, vector)
        return DefaultingResolver(
            self.registry, vector, self.config.default_action_index
        )

    def evaluate(self, vector: CandidateVector) -> Tuple[VerificationResult, ExplorationKernel]:
        """Model check one candidate, resuming from the prefix cache when possible."""
        tele = self.telemetry
        if not tele.enabled:
            return self._evaluate_inner(vector)
        begin = time.perf_counter()
        with tele.span("evaluate", candidate=_candidate_label(vector)) as span:
            result, explorer = self._evaluate_inner(vector)
            span.set(
                verdict=result.verdict.value,
                states=result.stats.states_visited,
            )
        handles = self._metric_handles
        if handles is not None:
            handles["check_seconds"].observe(time.perf_counter() - begin)
        return result, explorer

    def _evaluate_inner(self, vector: CandidateVector) -> Tuple[VerificationResult, ExplorationKernel]:
        concrete = not any(entry is WILDCARD for entry in vector.entries)
        assignment = None
        holes_before: Optional[Tuple[Hole, ...]] = None
        if self.store is not None and concrete:
            holes_before = self.registry.holes
            assignment = merge_assignment(holes_before, vector.entries)
            stored = self.store.lookup(
                self._system_sig, self._flags_sig, assignment
            )
            if stored is not None and self._stored_run_usable(stored):
                self.store_hits += 1
                return self._replay_stored_run(stored)
        cache = self.prefix_cache
        resume: Optional[ExplorationCheckpoint] = None
        collect = False
        cacheable = cache is not None and concrete
        if cacheable:
            if len(vector) == 0:
                # The initial run *is* the empty-prefix exploration; keep
                # its checkpoint so pass-1 candidates resume from it.
                collect = True
            else:
                resume = self._resume_checkpoint(vector.entries, cache)
        explorer = make_explorer(
            self.config.explorer,
            self.system,
            resolver=self.make_resolver(vector),
            limits=self.config.limits,
            record_traces=self.config.record_traces,
            track_hole_paths=self.config.refined_patterns,
            resume_from=resume,
            collect_checkpoint=collect,
            partial_order=self.config.partial_order_active,
            packed=self.config.packed,
            # In family mode every kernel run of this core — including the
            # initial empty-candidate run — is family-tagged, so the root
            # family of each pass can resume the initial checkpoint.
            family=self.config.family_active,
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )
        result = explorer.run()
        if collect:
            cache.store((), explorer.checkpoint)
        if resume is not None:
            cache.note_hit(result.stats.prefix_states_reused)
        if assignment is not None and not self.store_readonly:
            result = self._record_stored_run(
                assignment, holes_before, vector.entries, result, explorer
            )
        return result, explorer

    # -- verdict store ------------------------------------------------------

    def _stored_run_usable(self, stored: StoredRun) -> bool:
        """Whether a store hit satisfies everything this run must produce.

        A stored success without a fingerprint cannot serve a run that
        was asked to compute fingerprints — treat it as a miss and let
        the cold run re-record with one.
        """
        if (
            self.config.compute_fingerprints
            and stored.verdict == Verdict.SUCCESS.value
            and stored.fingerprint is None
        ):
            return False
        return True

    def _replay_stored_run(
        self, stored: StoredRun
    ) -> Tuple[VerificationResult, "_StoredRunExplorer"]:
        """Rebuild a :class:`VerificationResult` from the store, sans model check.

        Holes the original run discovered are *reserved* (placeholder
        slots in discovery order); a later cold run binds the real hole
        objects by name (:meth:`HoleRegistry.reserve`).
        """
        for name, action_names in stored.new_holes:
            self.registry.reserve(
                Hole(name, tuple(Action(action) for action in action_names))
            )
        executed = []
        for name in stored.executed:
            try:
                executed.append(self.registry.hole_named(name))
            except KeyError:
                # The hole exists in the stored run but was never reserved
                # nor discovered here — impossible for self-recorded runs,
                # but tolerated for hand-edited journals.
                executed.append(Hole(name, (Action(name),)))
        stats_fields = {
            key: value
            for key, value in stored.stats.items()
            if key in _RUN_STATS_FIELDS
        }
        result = VerificationResult(
            verdict=Verdict(stored.verdict),
            failure_kind=(
                FailureKind(stored.failure_kind)
                if stored.failure_kind
                else None
            ),
            message=stored.message,
            trace=None,
            stats=RunStats(**stats_fields),
            wildcard_encountered=stored.wildcard_encountered,
            executed_holes=frozenset(executed),
            failure_holes=None,
            unmet_coverage=stored.unmet_coverage,
            cut_holes=stored.cut_holes,
            stored_pattern=stored.pattern,
        )
        return result, _StoredRunExplorer(stored.fingerprint)

    def _record_stored_run(
        self,
        assignment: Tuple[Tuple[str, int], ...],
        holes_before: Tuple[Hole, ...],
        digits: Tuple[int, ...],
        result: VerificationResult,
        explorer: ExplorationKernel,
    ) -> VerificationResult:
        """Append one cold run's outcome to the store.

        The failure pattern is generalised *here*, once, and handed back
        on the result (``stored_pattern``) so :meth:`handle_result` does
        not replay the counterexample a second time.
        """
        pattern_constraints = None
        if result.is_failure and self.config.pruning:
            pattern = self._pattern_for_failure(digits, result)
            pattern_constraints = tuple(pattern.constraints)
            result = dataclasses.replace(
                result, stored_pattern=pattern_constraints
            )
        fingerprint = None
        if result.is_success and self.config.compute_fingerprints:
            fingerprint = explorer.fingerprint_visited()
        new_holes = tuple(
            (
                hole.name,
                tuple(action.name for action in hole.domain),
            )
            for hole in self.registry.holes[len(holes_before):]
        )
        stored = StoredRun(
            verdict=result.verdict.value,
            failure_kind=(
                result.failure_kind.value
                if result.failure_kind is not None
                else None
            ),
            message=result.message,
            stats=dataclasses.asdict(result.stats),
            wildcard_encountered=result.wildcard_encountered,
            executed=tuple(
                sorted(hole.name for hole in result.executed_holes)
            ),
            unmet_coverage=result.unmet_coverage,
            cut_holes=result.cut_holes,
            fingerprint=fingerprint,
            pattern=pattern_constraints,
            new_holes=new_holes,
        )
        self.store.record(self._system_sig, self._flags_sig, assignment, stored)
        self.store_writes += 1
        return result

    def close_store(self) -> None:
        """Flush and close a core-owned store (no-op for caller-owned ones)."""
        if self._owns_store and self.store is not None:
            self.store.close()
            self.store = None

    def _resume_checkpoint(
        self, digits: Tuple[int, ...], cache: PrefixCache
    ) -> Optional[ExplorationCheckpoint]:
        """Deepest usable checkpoint for a candidate, building the chain.

        Walks the cache for the longest already-built prefix of ``digits``,
        then extends the chain one digit at a time (each level resuming
        from the previous) up to the parent prefix ``digits[:-1]``.  A
        level whose exploration hits a counterexample (invariant/deadlock)
        is stored as a negative entry and stops the chain — the candidate
        still resumes from the deepest good level below it.  A level
        failing only *coverage* checkpoints normally: it was a complete,
        wildcard-free exploration, so resumed extensions inherit the same
        verdict instantly instead of re-exploring.
        """
        n = len(digits)
        best: Optional[ExplorationCheckpoint] = None
        best_len = -1
        blocked: Optional[int] = None
        for k in range(n - 1, -1, -1):
            found, entry = cache.lookup(tuple(digits[:k]))
            if not found:
                continue
            if entry is None:
                blocked = k
                continue
            best, best_len = entry, k
            break
        last_good = best
        for k in range((best_len + 1) if best is not None else 0, n):
            if blocked is not None and k >= blocked:
                break
            built = self._build_prefix_checkpoint(tuple(digits[:k]), last_good, cache)
            if built is None:
                break
            last_good = built
        return last_good

    def _build_prefix_checkpoint(
        self,
        prefix: Tuple[int, ...],
        resume: Optional[ExplorationCheckpoint],
        cache: PrefixCache,
    ) -> Optional[ExplorationCheckpoint]:
        tele = self.telemetry
        span = (
            tele.span("prefix_build", prefix=len(prefix))
            if tele.enabled
            else nullcontext()
        )
        with span:
            explorer = make_explorer(
                self.config.explorer,
                self.system,
                resolver=self.make_resolver(CandidateVector.from_digits(prefix)),
                limits=self.config.limits,
                record_traces=self.config.record_traces,
                track_hole_paths=self.config.refined_patterns,
                resume_from=resume,
                collect_checkpoint=True,
                partial_order=self.config.partial_order_active,
                packed=self.config.packed,
                family=self.config.family_active,
                telemetry=tele if tele.enabled else None,
            )
            explorer.run()
        cache.store(prefix, explorer.checkpoint)
        cache.note_build()
        return explorer.checkpoint

    def run_initial(self) -> None:
        """Run 1 of the paper: the empty candidate discovers the first holes.

        In naive mode the initial run *is* the all-defaults candidate; it is
        counted once here and deduplicated in later passes.
        """
        result, explorer = self.evaluate(CandidateVector.empty())
        self.evaluated += 1
        self.handle_result((), result, explorer, run_index=self.evaluated)

    def process_candidate(
        self,
        walker: "_PassWalker",
        digits: Tuple[int, ...],
        first_new: int,
        lock: Optional["threading.Lock"] = None,
    ) -> None:
        """Dispatch one enumerated candidate: dedup, prune, or model check.

        This is the single verdict-handling path shared by the sequential
        engine, the thread workers, and the process workers (``repro.dist``).
        With ``lock=None`` the evaluation budget is checked *before* the
        model-checker run (sequential semantics); with a lock the check
        happens under the lock after the run, preserving the thread engine's
        historical counting.
        """
        guard = lock if lock is not None else nullcontext()
        if not self.config.pruning and self.all_defaults_since(digits, first_new):
            with guard:
                self.deduplicated += 1
            walker.counters.yielded -= 1
            return
        tag = walker.recheck_at_leaf()
        if tag is not None:
            walker.enumerator.note_leaf_skipped(tag)
            with guard:
                self.observer.on_prune(digits, tag)
            return
        if lock is None:
            self.check_evaluation_budget()
        result, explorer = self.evaluate(CandidateVector.from_digits(digits))
        with guard:
            if lock is not None:
                self.check_evaluation_budget()
            self.evaluated += 1
            self.handle_result(digits, result, explorer, run_index=self.evaluated)

    # -- family-based synthesis ---------------------------------------------

    def evaluate_family(
        self, family: HoleFamily, resume: Optional[ExplorationCheckpoint] = None
    ) -> Tuple[VerificationResult, ExplorationKernel]:
        """Model check one family's quotient (unfixed holes as wildcards)."""
        tele = self.telemetry
        if not tele.enabled:
            return self._evaluate_family_inner(family, resume)
        begin = time.perf_counter()
        with tele.span(
            "evaluate_family",
            family=_candidate_label(family.check_vector()),
            size=family.size,
        ) as span:
            result, explorer = self._evaluate_family_inner(family, resume)
            span.set(
                verdict=result.verdict.value,
                states=result.stats.states_visited,
            )
        handles = self._metric_handles
        if handles is not None:
            handles["check_seconds"].observe(time.perf_counter() - begin)
        return result, explorer

    def _evaluate_family_inner(
        self, family: HoleFamily, resume: Optional[ExplorationCheckpoint]
    ) -> Tuple[VerificationResult, ExplorationKernel]:
        cache = self.prefix_cache
        if resume is None and cache is not None:
            # The root family's quotient is the initial run re-examined;
            # resume its cached checkpoint instead of re-exploring.  The
            # mode check is a guard for caller-owned caches that may hold
            # a 1-by-1 chain (the family scheduler never stores into the
            # LRU itself — child checkpoints ride the worklist).
            found, entry = cache.lookup(())
            if found and entry is not None and entry.family:
                resume = entry
        collect = cache is not None and not family.is_singleton
        vector = family.check_vector()
        explorer = make_explorer(
            self.config.explorer,
            self.system,
            resolver=self.make_resolver(vector),
            limits=self.config.limits,
            record_traces=self.config.record_traces,
            track_hole_paths=self.config.refined_patterns,
            resume_from=resume,
            collect_checkpoint=collect,
            partial_order=self.config.partial_order_active,
            packed=self.config.packed,
            family=True,
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )
        result = explorer.run()
        if resume is not None and cache is not None:
            cache.note_hit(result.stats.prefix_states_reused)
        return result, explorer

    def process_family(
        self,
        family: HoleFamily,
        resume: Optional[ExplorationCheckpoint],
        depth: int,
        counters: "_FamilyPassCounters",
        lock: Optional["threading.Lock"] = None,
    ) -> Tuple[Tuple[HoleFamily, Optional[ExplorationCheckpoint], int], ...]:
        """Narrow, check, and classify one family from the worklist.

        Returns the child work items an ambiguous verdict produced (empty
        for terminal verdicts), each carrying this quotient's checkpoint
        so the re-check resumes at the wildcard-cut frontier.  This is
        the family counterpart of :meth:`process_candidate` and is shared
        by the sequential driver, the thread workers, and the process
        workers; the same ``lock`` convention applies.
        """
        guard = lock if lock is not None else nullcontext()
        success_constraints = (
            self.success_table.constraints_since(0)
            if self.config.success_patterns
            else ()
        )
        remaining, pruned, skipped = narrow_family(
            family, self.fail_table.constraints_since(0), success_constraints
        )
        if pruned or skipped:
            with guard:
                counters.covered += pruned + skipped
                counters.pruned += pruned
                counters.skipped += skipped
        if remaining is None:
            return ()
        family = remaining
        if lock is None:
            self.check_evaluation_budget()
        result, explorer = self.evaluate_family(family, resume)
        with guard:
            if lock is not None:
                self.check_evaluation_budget()
            self.evaluated += 1
            self.family_checked += 1
            if depth > self.family_max_split_depth:
                self.family_max_split_depth = depth
            return self._handle_family_result(
                family, result, explorer, depth, counters,
                run_index=self.evaluated,
            )

    def _handle_family_result(
        self,
        family: HoleFamily,
        result: VerificationResult,
        explorer: ExplorationKernel,
        depth: int,
        counters: "_FamilyPassCounters",
        run_index: int,
    ) -> Tuple[Tuple[HoleFamily, Optional[ExplorationCheckpoint], int], ...]:
        """Classify one checked family; must run under the engine guard."""
        self.verdict_counts[result.verdict.value] += 1
        self.por_rules_skipped += result.stats.por_rules_skipped
        self.ample_states += result.stats.ample_states
        if result.stats.states_visited > self.peak_states:
            self.peak_states = result.stats.states_visited
        handles = self._metric_handles
        if handles is not None:
            handles["evaluated"].inc()
            handles["family_checked"].inc()
            handles["family_depth"].track_max(depth)
            handles["verdicts"][result.verdict.value].inc()
            handles["states"].inc(result.stats.states_visited)
            handles["transitions"].inc(result.stats.transitions_fired)
            handles["peak"].track_max(result.stats.states_visited)
        progress = self.telemetry.progress
        if progress is not None:
            progress.tick(
                evaluated=self.evaluated,
                solutions=len(self.solutions),
                patterns=len(self.fail_table),
                peak_states=self.peak_states,
                cache_hits=(
                    self.prefix_cache.hits if self.prefix_cache is not None else 0
                ),
            )
        vector = family.check_vector()
        holes = self.registry.holes
        self.observer.on_run(run_index, vector, result, holes)
        size = family.size

        if result.is_failure:
            # All-fail: the counterexample executed only fixed holes (a
            # completed firing never resolves a wildcard), so every member
            # contains it.  One pattern prunes the whole family.
            counters.covered += size
            counters.pruned += size - 1
            self.family_candidates_avoided += size - 1
            if handles is not None and size > 1:
                handles["family_avoided"].inc(size - 1)
            pattern = self._pattern_for_family_failure(family, result)
            if pattern.is_empty:
                self.inherent_failure = True
                self.inherent_failure_message = (
                    result.message or "empty candidate failed"
                )
                raise _StopSynthesis()
            if self.fail_table.add(pattern):
                self.observer.on_pattern(pattern, holes)
            return ()

        if result.is_success:
            # All-pass: SUCCESS means the run was wildcard-free, i.e. the
            # quotient never read the unfixed holes — every member is
            # behaviourally identical to it, and each becomes a solution
            # carrying the quotient's states and fingerprint.
            counters.covered += size
            fingerprint = (
                explorer.fingerprint_visited()
                if self.config.compute_fingerprints
                else None
            )
            executed = tuple(sorted(hole.name for hole in result.executed_holes))
            filtered = 0
            for member in family.members():
                if (
                    self.config.success_patterns
                    and self.success_table.matches(
                        CandidateVector.from_digits(member)
                    )
                    is not None
                ):
                    # Already covered by an earlier pass's solution whose
                    # extension this member is; the 1-by-1 walker would
                    # have skipped it the same way.
                    counters.skipped += 1
                    filtered += 1
                    continue
                solution = Solution(
                    digits=member,
                    assignment=tuple(
                        (holes[pos].name, holes[pos].domain[action].name)
                        for pos, action in enumerate(member)
                    ),
                    states_visited=result.stats.states_visited,
                    fingerprint=fingerprint,
                    run_index=run_index,
                    executed_holes=executed,
                )
                self.solutions.append(solution)
                self.observer.on_solution(solution, holes)
                if (
                    self.config.solution_limit is not None
                    and len(self.solutions) >= self.config.solution_limit
                ):
                    self.stopped_early = True
                    raise _StopSynthesis()
            avoided = max(0, size - filtered - 1)
            self.family_candidates_avoided += avoided
            if handles is not None and avoided:
                handles["family_avoided"].inc(avoided)
            if self.config.success_patterns:
                # One generalised pattern at the *fixed* positions only —
                # sound because the quotient never read the others — so
                # later passes skip every member's extensions at once.
                self.success_table.add(PruningPattern.from_candidate(vector))
            return ()

        # Ambiguous: the verdict depends on holes the family leaves open.
        position = self._choose_split_position(family, result)
        if position is None:
            # Only beyond-width holes cut the run, so every member explores
            # the identical space and would be UNKNOWN 1-by-1 as well; the
            # next pass (wider radices) re-covers all of them.
            counters.covered += size
            self.family_candidates_avoided += size - 1
            if handles is not None and size > 1:
                handles["family_avoided"].inc(size - 1)
            return ()
        self.family_splits += 1
        if handles is not None:
            handles["family_splits"].inc()
        checkpoint = explorer.checkpoint  # None unless collected
        return tuple(
            (child, checkpoint, depth + 1)
            for child in family.split(position)
        )

    def _pattern_for_family_failure(
        self, family: HoleFamily, result: VerificationResult
    ) -> PruningPattern:
        """Failure pattern covering every member of an all-fail family.

        Conflict generalisation replays the trace against the quotient's
        check vector and constrains only the holes it executed (a subset
        of the fixed positions); the fallback constrains exactly the
        fixed positions.  Either way the whole family matches.
        """
        digits = family.check_digits()
        if self.config.generalise_active:
            pattern = generalise_failure(
                self.system, self.registry, digits, result,
                telemetry=self.telemetry if self.telemetry.enabled else None,
            )
            if pattern is not None:
                return pattern
        return PruningPattern.from_candidate(family.check_vector())

    def _choose_split_position(
        self, family: HoleFamily, result: VerificationResult
    ) -> Optional[int]:
        """The in-family position whose hole cut the quotient shallowest.

        Ties break towards the lower position; holes that cut but sit
        beyond the family's width (discovered mid-run) or at already-fixed
        positions cannot be split here and are ignored.
        """
        best: Optional[Tuple[int, int]] = None
        for name, cut_depth in result.cut_holes:
            try:
                hole = self.registry.hole_named(name)
            except KeyError:
                continue
            position = self.registry.position_of(hole, register=False)
            if position is None or position >= family.width:
                continue
            if len(family.options[position]) < 2:
                continue
            key = (cut_depth, position)
            if best is None or key < best:
                best = key
        return None if best is None else best[1]

    def finalize_report(self, report: "SynthesisReport") -> "SynthesisReport":
        """Copy the aggregate outcome into ``report`` (shared by all engines)."""
        report.holes = list(self.registry.holes)
        report.evaluated = self.evaluated
        report.deduplicated = self.deduplicated
        report.verdict_counts = dict(self.verdict_counts)
        report.failure_patterns = len(self.fail_table)
        report.success_patterns = len(self.success_table)
        report.solutions = list(self.solutions)
        report.inherent_failure = self.inherent_failure
        report.inherent_failure_message = self.inherent_failure_message
        report.stopped_early = self.stopped_early
        hits, builds, reused = self.merged_prefix_counters
        if self.prefix_cache is not None:
            own_hits, own_builds, own_reused = self.prefix_cache.counters()
            hits += own_hits
            builds += own_builds
            reused += own_reused
        report.prefix_cache_hits = hits
        report.prefix_cache_builds = builds
        report.prefix_states_reused = reused
        report.partial_order = self.config.partial_order_active
        report.packed = self.config.packed
        report.family = self.config.family_active
        report.family_checked = self.family_checked
        report.family_splits = self.family_splits
        report.family_max_split_depth = self.family_max_split_depth
        report.family_candidates_avoided = self.family_candidates_avoided
        report.por_rules_skipped = self.por_rules_skipped
        report.ample_states = self.ample_states
        report.peak_states = self.peak_states
        report.store_enabled = self.store_attached
        report.store_path = self.config.store_path
        report.store_hits = self.store_hits
        report.store_writes = self.store_writes
        tele = self.telemetry
        report.telemetry_enabled = tele.enabled
        if tele.enabled:
            report.trace_path = tele.trace_path
            report.trace_events = tele.events_written
            if self._metric_handles is not None and self.prefix_cache is not None:
                own_hits, own_builds, own_reused = self.prefix_cache.counters()
                metrics = tele.metrics
                metrics.gauge(
                    "prefix_cache_hits", "resumed candidate evaluations"
                ).track_max(own_hits)
                metrics.gauge(
                    "prefix_cache_builds", "prefix explorations performed"
                ).track_max(own_builds)
                metrics.gauge(
                    "prefix_states_reused", "states inherited, not re-explored"
                ).track_max(own_reused)
        return report

    def handle_result(
        self,
        digits: Tuple[int, ...],
        result: VerificationResult,
        explorer: ExplorationKernel,
        run_index: int,
    ) -> None:
        """Record patterns/solutions for one dispatched candidate."""
        self.verdict_counts[result.verdict.value] += 1
        self.por_rules_skipped += result.stats.por_rules_skipped
        self.ample_states += result.stats.ample_states
        if result.stats.states_visited > self.peak_states:
            self.peak_states = result.stats.states_visited
        handles = self._metric_handles
        if handles is not None:
            handles["evaluated"].inc()
            handles["verdicts"][result.verdict.value].inc()
            handles["states"].inc(result.stats.states_visited)
            handles["transitions"].inc(result.stats.transitions_fired)
            handles["peak"].track_max(result.stats.states_visited)
        progress = self.telemetry.progress
        if progress is not None:
            progress.tick(
                evaluated=self.evaluated,
                solutions=len(self.solutions),
                patterns=len(self.fail_table),
                peak_states=self.peak_states,
                cache_hits=(
                    self.prefix_cache.hits if self.prefix_cache is not None else 0
                ),
            )
        vector = CandidateVector.from_digits(digits)
        holes = self.registry.holes
        self.observer.on_run(run_index, vector, result, holes)

        if result.is_failure and self.config.pruning:
            pattern = self._pattern_for_failure(digits, result)
            if pattern.is_empty:
                self.inherent_failure = True
                self.inherent_failure_message = result.message or "empty candidate failed"
                raise _StopSynthesis()
            if self.fail_table.add(pattern):
                self.observer.on_pattern(pattern, holes)
        elif result.is_success:
            solution = Solution(
                digits=digits,
                assignment=tuple(
                    (holes[pos].name, holes[pos].domain[action].name)
                    for pos, action in enumerate(digits)
                ),
                states_visited=result.stats.states_visited,
                fingerprint=(
                    # Packed explorers key visited by slab id; this decodes
                    # and re-canonicalises so fingerprints stay bit-identical
                    # across packed and object runs.
                    explorer.fingerprint_visited()
                    if self.config.compute_fingerprints
                    else None
                ),
                run_index=run_index,
                executed_holes=tuple(
                    sorted(hole.name for hole in result.executed_holes)
                ),
            )
            self.solutions.append(solution)
            self.observer.on_solution(solution, holes)
            if self.config.pruning and self.config.success_patterns:
                self.success_table.add(PruningPattern.from_candidate(vector))
            if (
                self.config.solution_limit is not None
                and len(self.solutions) >= self.config.solution_limit
            ):
                self.stopped_early = True
                raise _StopSynthesis()

    def _pattern_for_failure(
        self, digits: Tuple[int, ...], result: VerificationResult
    ) -> PruningPattern:
        if result.stored_pattern is not None:
            # Precomputed — replayed from the verdict store, or computed
            # once while recording to it; never generalise twice.
            return PruningPattern(result.stored_pattern)
        if self.config.generalise_active:
            pattern = generalise_failure(
                self.system, self.registry, digits, result,
                telemetry=self.telemetry if self.telemetry.enabled else None,
            )
            if pattern is not None:
                return pattern
        if self.config.refined_patterns and result.failure_holes is not None:
            constraints = []
            for hole in result.failure_holes:
                position = self.registry.position_of(hole, register=False)
                if position is None or position >= len(digits):
                    raise SynthesisError(
                        f"failure hole {hole.name!r} has no assigned position"
                    )
                constraints.append((position, digits[position]))
            return PruningPattern(constraints)
        return PruningPattern.from_candidate(CandidateVector.from_digits(digits))

    def check_evaluation_budget(self) -> None:
        """Stop the synthesis once the evaluation cap is reached."""
        if (
            self.config.max_evaluations is not None
            and self.evaluated >= self.config.max_evaluations
        ):
            self.stopped_early = True
            raise _StopSynthesis()

    def all_defaults_since(self, digits: Tuple[int, ...], first_new: int) -> bool:
        """Naive-mode dedup: are all positions >= first_new at the default?

        Such a candidate is behaviourally identical to the shorter prefix
        already evaluated in the previous pass (defaults were substituted
        for the then-unknown holes), so it is skipped and counted as a
        duplicate; the total of unique evaluations telescopes to exactly the
        full product, matching the paper's naive "Evaluated" column.
        """
        holes = self.registry.holes
        for position in range(first_new, len(digits)):
            default = min(self.config.default_action_index, holes[position].arity - 1)
            if digits[position] != default:
                return False
        return True


class _FamilyPassCounters:
    """Per-pass coverage accounting for the family scheduler.

    The three fields map onto the report's ``covered`` /
    ``pruned_failure`` / ``skipped_success`` columns exactly as the
    enumerator counters do for the 1-by-1 walk; per pass, ``covered``
    sums to the full candidate product.  Mutations happen under the
    engine guard (sequential: no lock needed; threads: the shared lock).
    """

    __slots__ = ("covered", "pruned", "skipped")

    def __init__(self) -> None:
        self.covered = 0
        self.pruned = 0
        self.skipped = 0


class _PassWalker:
    """Adapter: one pass walk with pattern-delta tracking at leaves."""

    def __init__(self, core: SynthesisCore, radices: Sequence[int],
                 start: int = 0, end: Optional[int] = None) -> None:
        self.core = core
        config = core.config
        self._pairs: List[Tuple[str, PruningTable, DfsMatcher]] = []
        if not config.pruning:
            self.enumerator = SubtreeEnumerator(radices, [], start, end)
        elif config.naive_match:
            tables = [
                (FAIL_TAG, core.fail_table),
                (SUCCESS_TAG, core.success_table),
            ]
            self.enumerator = NaiveEnumerator(radices, tables, start, end)
        else:
            matchers = []
            for tag, table in (
                (FAIL_TAG, core.fail_table),
                (SUCCESS_TAG, core.success_table),
            ):
                matcher = DfsMatcher(table.all_patterns())
                matchers.append((tag, matcher))
                self._pairs.append((tag, table, matcher))
            self._seen_versions = {
                tag: table.version for tag, table, _m in self._pairs
            }
            self.enumerator = SubtreeEnumerator(radices, matchers, start, end)

    def recheck_at_leaf(self) -> Optional[str]:
        """Integrate patterns that arrived since this walker last looked.

        Returns the tag of a now-matching table, or None if the candidate
        should be dispatched.  For the naive matcher the live tables were
        already consulted at yield time.
        """
        config = self.core.config
        if not config.pruning:
            return None
        if config.naive_match:
            return None  # live tables were consulted at yield time
        path = self.enumerator.current_path
        for tag, table, matcher in self._pairs:
            version = table.version
            seen = self._seen_versions[tag]
            if version > seen:
                matcher.integrate(table.patterns_since(seen), path)
                self._seen_versions[tag] = version
        return self.enumerator.matched_tag()

    @property
    def counters(self):
        return self.enumerator.counters


class SynthesisEngine:
    """Sequential synthesis driver."""

    def __init__(
        self,
        system: TransitionSystem,
        config: Optional[SynthesisConfig] = None,
        observer: Optional[SynthesisObserver] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.system = system
        self.config = config or SynthesisConfig()
        self.telemetry, self._owns_telemetry = resolve_telemetry(
            self.config, telemetry
        )
        self.core = SynthesisCore(
            system, self.config, observer, telemetry=self.telemetry
        )

    def run(self) -> SynthesisReport:
        """Run the full synthesis procedure and return the report."""
        core = self.core
        config = self.config
        report = SynthesisReport(
            system_name=self.system.name,
            pruning=config.pruning,
            threads=1,
            backend="sequential",
            explorer=config.explorer,
        )
        watch = Stopwatch.started()
        try:
            with self.telemetry.span(
                "synthesis", system=self.system.name, backend="sequential"
            ) as span:
                try:
                    core.run_initial()
                    self._run_passes(report)
                except _StopSynthesis:
                    pass
                span.set(evaluated=core.evaluated, solutions=len(core.solutions))
            report.elapsed_seconds = watch.elapsed
            report = core.finalize_report(report)
        finally:
            core.close_store()
            if self._owns_telemetry:
                self.telemetry.close()
        return report

    def _run_passes(self, report: SynthesisReport) -> None:
        core = self.core
        previous_count = 0
        while True:
            holes = core.registry.holes
            if len(holes) == previous_count:
                break
            if (
                self.config.max_passes is not None
                and report.passes >= self.config.max_passes
            ):
                core.stopped_early = True
                break
            first_new = previous_count
            previous_count = len(holes)
            report.passes += 1
            core.observer.on_pass_started(report.passes, holes)
            radices = [hole.arity for hole in holes]
            if self.config.family_active:
                counters = _FamilyPassCounters()
                with self.telemetry.span(
                    "pass", index=report.passes, holes=len(holes)
                ):
                    self._walk_family_pass(radices, counters)
                report.covered += counters.covered
                report.pruned_failure += counters.pruned
                report.skipped_success += counters.skipped
                continue
            walker = _PassWalker(core, radices)
            with self.telemetry.span("pass", index=report.passes, holes=len(holes)):
                self._walk_pass(walker, first_new, report)
            counters = walker.counters
            report.covered += counters.covered
            report.pruned_failure += counters.skipped.get(FAIL_TAG, 0)
            report.skipped_success += counters.skipped.get(SUCCESS_TAG, 0)

    def _walk_pass(self, walker: _PassWalker, first_new: int,
                   report: SynthesisReport) -> None:
        core = self.core
        for digits in walker.enumerator:
            core.process_candidate(walker, digits, first_new)

    def _walk_family_pass(
        self, radices: Sequence[int], counters: _FamilyPassCounters
    ) -> None:
        """One pass as a LIFO worklist of families over this pass's holes.

        Children are pushed in reverse option order so the lowest option
        is processed first — the family counterpart of the enumerator's
        lexicographic order, keeping run indices deterministic.
        """
        core = self.core
        worklist: List[
            Tuple[HoleFamily, Optional[ExplorationCheckpoint], int]
        ] = [(HoleFamily.full(radices), None, 0)]
        while worklist:
            family, resume, depth = worklist.pop()
            children = core.process_family(family, resume, depth, counters)
            worklist.extend(reversed(children))
