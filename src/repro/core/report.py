"""Synthesis results and reporting.

:class:`SynthesisReport` carries everything Table I of the paper reports for
one configuration — holes, candidate-space sizes, pruning-pattern count,
evaluated candidates, solutions, execution time — plus the extra counters a
downstream user needs to understand a run (verdict breakdown, passes,
skip attribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.candidate import CandidateVector, format_candidate
from repro.core.hole import Hole


@dataclass(frozen=True)
class Solution:
    """One correct candidate configuration.

    Attributes:
        digits: the action index per hole (discovery order) at the time the
            solution was verified; holes discovered later are don't-cares
            (provably unreachable under this configuration).
        assignment: hole name → action name, for human consumption.
        executed_holes: names of the holes actually resolved during the
            verifying run.  Assigned-but-unexecuted holes are don't-cares;
            in naive (no-pruning) mode, executed holes beyond ``digits``
            took their default action.
        states_visited: size of the explored (symmetry-reduced) state space;
            the paper reports 5207/6025/6332 for its MSI solution groups.
        fingerprint: order-independent fingerprint of the visited state set
            (None unless fingerprints were enabled); equal fingerprints mean
            behaviourally identical solutions.
        run_index: which model-checker run found it (1-based, counting only
            dispatched runs, as in Figure 2).
    """

    digits: Tuple[int, ...]
    assignment: Tuple[Tuple[str, str], ...]
    states_visited: int
    fingerprint: Optional[int]
    run_index: int
    executed_holes: Tuple[str, ...] = ()

    def assignment_dict(self) -> Dict[str, str]:
        """The assignment as a hole-name -> action-name dict."""
        return dict(self.assignment)

    def __str__(self) -> str:
        inner = ", ".join(f"{hole}={action}" for hole, action in self.assignment)
        return f"Solution({inner})"


@dataclass
class SynthesisReport:
    """Aggregate outcome of one synthesis run."""

    system_name: str
    pruning: bool
    threads: int
    #: evaluation backend that produced this report; ``threads`` counts
    #: workers of whichever kind (threads or processes) the backend uses.
    backend: str = "sequential"
    #: frontier strategy the model checker ran with (``bfs``/``dfs``)
    explorer: str = "bfs"
    holes: List[Hole] = field(default_factory=list)
    passes: int = 0
    evaluated: int = 0
    pruned_failure: int = 0
    skipped_success: int = 0
    deduplicated: int = 0
    covered: int = 0
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    failure_patterns: int = 0
    success_patterns: int = 0
    solutions: List[Solution] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: prefix exploration cache (see repro.core.engine.PrefixCache):
    #: candidate runs resumed / checkpoint builds / states inherited
    prefix_cache_hits: int = 0
    prefix_cache_builds: int = 0
    prefix_states_reused: int = 0
    #: partial-order reduction (see repro.mc.footprint): whether candidate
    #: runs used it, enabled firings deferred, reduced expansions
    partial_order: bool = False
    por_rules_skipped: int = 0
    ample_states: int = 0
    #: packed-state kernel (see repro.mc.packed): whether candidate runs
    #: were asked to use the fixed-layout encoding (systems without a
    #: codec spec fall back to the object path silently)
    packed: bool = False
    #: family-based synthesis (see repro.core.family): whether the run
    #: scheduled hole families instead of flat candidates, how many
    #: family quotients were model checked, how many ambiguous families
    #: split, the deepest split chain, and how many per-candidate checks
    #: the family verdicts avoided
    family: bool = False
    family_checked: int = 0
    family_splits: int = 0
    family_max_split_depth: int = 0
    family_candidates_avoided: int = 0
    #: largest visited-state count of any single candidate run — the
    #: run's memory high-water mark (surfaced in the matrix journal)
    peak_states: int = 0
    #: durable verdict store (see repro.store): whether one was attached,
    #: its directory, evaluations replayed from it, and runs appended to
    #: it; ``evaluated - store_hits`` is the run's true model-check count
    store_enabled: bool = False
    store_path: Optional[str] = None
    store_hits: int = 0
    store_writes: int = 0
    #: observability layer (see repro.obs): whether telemetry ran, where
    #: the trace landed (None = no trace file), events emitted so far
    telemetry_enabled: bool = False
    trace_path: Optional[str] = None
    trace_events: int = 0
    inherent_failure: bool = False
    inherent_failure_message: str = ""
    stopped_early: bool = False

    @property
    def hole_count(self) -> int:
        """Number of holes discovered."""
        return len(self.holes)

    @property
    def naive_candidate_space(self) -> int:
        """Size of the fully-assigned candidate space: prod(|domain|)."""
        size = 1
        for hole in self.holes:
            size *= hole.arity
        return size

    @property
    def wildcard_candidate_space(self) -> int:
        """Candidate space including wildcards: prod(|domain| + 1).

        This is the "Candidates" column Table I reports for the pruning
        configurations.
        """
        size = 1
        for hole in self.holes:
            size *= hole.arity + 1
        return size

    @property
    def candidate_space(self) -> int:
        """The space the paper's "Candidates" column reports for this mode."""
        return self.wildcard_candidate_space if self.pruning else self.naive_candidate_space

    @property
    def model_checks(self) -> int:
        """Model-checker runs actually performed (evaluated minus store hits)."""
        return self.evaluated - self.store_hits

    @property
    def reduction_vs_naive(self) -> float:
        """Fraction of the naive space *not* evaluated (paper: 99.6%/99.8%)."""
        naive = self.naive_candidate_space
        if naive == 0:
            return 0.0
        return 1.0 - (self.evaluated / naive)

    def format_solution(self, solution: Solution) -> str:
        """Render one solution in the candidate notation."""
        vector = CandidateVector.from_digits(solution.digits)
        return format_candidate(vector, self.holes)

    def table_row(self, configuration: str) -> Dict[str, object]:
        """One row of Table I."""
        return {
            "Configuration": configuration,
            "Holes": self.hole_count,
            "Candidates": self.candidate_space,
            "Pruning Patterns": self.failure_patterns if self.pruning else None,
            "Evaluated": self.evaluated,
            "Solutions": len(self.solutions),
            "Exec. Time": self.elapsed_seconds,
        }

    def summary(self) -> str:
        """Multi-line human-readable report summary."""
        lines = [
            f"system:            {self.system_name}",
            f"mode:              {'pruning' if self.pruning else 'naive'}"
            f", {self.backend} backend, {self.threads} worker(s)"
            f", {self.explorer} explorer",
            f"holes discovered:  {self.hole_count}"
            f" ({', '.join(h.name for h in self.holes)})",
            f"candidate space:   {self.naive_candidate_space:,}"
            f" (with wildcards: {self.wildcard_candidate_space:,})",
            f"passes:            {self.passes}",
            f"evaluated:         {self.evaluated:,}",
            f"pruned (failure):  {self.pruned_failure:,}",
            f"skipped (success): {self.skipped_success:,}",
            f"deduplicated:      {self.deduplicated:,}",
            f"failure patterns:  {self.failure_patterns:,}",
            f"success patterns:  {self.success_patterns:,}",
            f"verdicts:          {self.verdict_counts}",
            f"solutions:         {len(self.solutions)}",
            f"elapsed:           {self.elapsed_seconds:.3f}s",
        ]
        if self.partial_order:
            lines.insert(
                -1,
                f"partial order:     {self.por_rules_skipped:,} firings "
                f"deferred at {self.ample_states:,} reduced states",
            )
        if self.packed:
            lines.insert(-1, "packed kernel:     on")
        if self.family:
            lines.insert(
                -1,
                f"family synthesis:  {self.family_checked:,} quotients checked, "
                f"{self.family_splits:,} splits (depth {self.family_max_split_depth}), "
                f"{self.family_candidates_avoided:,} checks avoided",
            )
        if self.store_enabled:
            lines.insert(
                -1,
                f"verdict store:     {self.store_hits:,} replayed, "
                f"{self.store_writes:,} recorded "
                f"({self.model_checks:,} model checks performed)",
            )
        if self.prefix_cache_hits or self.prefix_cache_builds:
            lines.insert(
                -1,
                f"prefix cache:      {self.prefix_cache_hits:,} resumed runs, "
                f"{self.prefix_states_reused:,} states reused "
                f"({self.prefix_cache_builds:,} checkpoint builds)",
            )
        if self.telemetry_enabled:
            where = (
                f"trace {self.trace_path} ({self.trace_events:,} events)"
                if self.trace_path
                else f"{self.trace_events:,} events (no trace file)"
            )
            lines.insert(
                -1,
                f"telemetry:         {where}, "
                f"peak states {self.peak_states:,}",
            )
        if self.inherent_failure:
            lines.append(f"INHERENT FAILURE:  {self.inherent_failure_message}")
        for solution in self.solutions:
            lines.append(f"  {self.format_solution(solution)}")
        return "\n".join(lines)
