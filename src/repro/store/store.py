"""The durable verdict store front end.

``VerdictStore`` combines the append-only journal (source of truth) and
the SQLite projection (fast lookup) behind two operations:

* ``lookup(system_sig, flags_sig, assignment)`` — O(1) check whether an
  identically-configured run already verified this candidate.
* ``record(system_sig, flags_sig, assignment, run)`` — durably append
  the outcome of one model-checker run.

Keys are content hashes over three components:

* **system signature** — protocol name plus the structural surface of
  the built transition system (rule/invariant/coverage names, initial
  state count, optional hooks).  Two differently-shaped systems never
  share verdicts even under the same name.
* **flags signature** — every configuration knob that can change a
  *verdict or its stored side effects* (pruning, default action index,
  explorer, partial order, conflict generalisation, refined patterns,
  packed kernel, family mode).  Knobs that only change performance or
  reporting (prefix reuse, trace recording, telemetry) are excluded so
  runs can share verdicts across them.
* **candidate assignment** — *name-keyed* ``(hole name, action index)``
  pairs, sorted by name.  Hole discovery order differs across backends
  and schedules; names do not.

Records carry everything the engine needs to replay a verdict without a
model check: the full run stats, executed holes, the generalised failure
pattern (so pruning tables grow identically), holes discovered *during*
the run (so lazy discovery replays), and the visited-state fingerprint
when one was computed.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.store.journal import VerdictJournal
from repro.store.projection import SqliteProjection

JOURNAL_NAME = "journal.jsonl"
PROJECTION_NAME = "store.sqlite"

Assignment = Tuple[Tuple[str, int], ...]


def _digest(payload: Any) -> str:
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(data.encode("utf-8")).hexdigest()


def system_signature(system: Any) -> str:
    """Structural hash of a built transition system (duck-typed).

    Rule/invariant/coverage names capture the replica count and protocol
    shape (rules are replicated per replica index); the canonicaliser tag
    distinguishes symmetry-reduced builds from identity builds, since the
    two produce different state counts and fingerprints.
    """

    canonicalize = getattr(system, "canonicalize", None)
    canon_tag = (
        ""
        if canonicalize is None
        else f"{type(canonicalize).__name__}:{getattr(canonicalize, '__qualname__', '')}"
    )
    deadlock = getattr(system, "deadlock", None)
    deadlock_tag = (
        ""
        if deadlock is None
        else (
            f"{getattr(getattr(deadlock, 'mode', None), 'name', '')}"
            f":{getattr(deadlock, 'quiescent', None) is not None}"
        )
    )
    payload = {
        "name": getattr(system, "name", ""),
        "rules": [rule.name for rule in getattr(system, "rules", ())],
        "invariants": [inv.name for inv in getattr(system, "invariants", ())],
        "coverage": sorted(
            getattr(goal, "name", str(goal)) for goal in getattr(system, "coverage", ())
        ),
        "canonicalize": canon_tag,
        "deadlock": deadlock_tag,
        "packed_spec": getattr(system, "packed_spec", None) is not None,
    }
    return _digest(payload)


def flags_signature(config: Any) -> str:
    """Hash of every configuration knob that can change a stored verdict."""

    payload = {
        "pruning": bool(getattr(config, "pruning", True)),
        "default_action_index": int(getattr(config, "default_action_index", 0)),
        "explorer": str(getattr(config, "explorer", "bfs")),
        "partial_order": bool(getattr(config, "partial_order_active", False)),
        "generalise": bool(getattr(config, "generalise_active", False)),
        "refined_patterns": bool(getattr(config, "refined_patterns", False)),
        "packed": bool(getattr(config, "packed", True)),
        "family": bool(getattr(config, "family_active", False)),
    }
    return _digest(payload)


def candidate_key(system_sig: str, flags_sig: str, assignment: Assignment) -> str:
    payload = {
        "system": system_sig,
        "flags": flags_sig,
        "assignment": [[name, int(digit)] for name, digit in sorted(assignment)],
    }
    return _digest(payload)


@dataclass
class StoredRun:
    """The replayable outcome of one model-checker run."""

    verdict: str
    failure_kind: Optional[str] = None
    message: str = ""
    stats: Dict[str, Any] = field(default_factory=dict)
    wildcard_encountered: bool = False
    executed: Tuple[str, ...] = ()
    unmet_coverage: Tuple[str, ...] = ()
    cut_holes: Tuple[Tuple[str, int], ...] = ()
    fingerprint: Optional[str] = None
    # Generalised failure pattern as (position, digit) constraints; None means
    # "no pattern stored", () means the empty (inherent-failure) pattern.
    pattern: Optional[Tuple[Tuple[int, int], ...]] = None
    # Holes discovered during this run, in discovery order: (name, action names).
    new_holes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def to_record(self) -> dict:
        return {
            "verdict": self.verdict,
            "failure_kind": self.failure_kind,
            "message": self.message,
            "stats": dict(self.stats),
            "wildcard_encountered": self.wildcard_encountered,
            "executed": list(self.executed),
            "unmet_coverage": list(self.unmet_coverage),
            "cut_holes": [[name, int(depth)] for name, depth in self.cut_holes],
            "fingerprint": self.fingerprint,
            "pattern": (
                None
                if self.pattern is None
                else [[int(pos), int(digit)] for pos, digit in self.pattern]
            ),
            "new_holes": [
                [name, list(actions)] for name, actions in self.new_holes
            ],
        }

    @classmethod
    def from_record(cls, record: dict) -> "StoredRun":
        pattern = record.get("pattern")
        return cls(
            verdict=str(record.get("verdict", "")),
            failure_kind=record.get("failure_kind"),
            message=str(record.get("message", "")),
            stats=dict(record.get("stats", {})),
            wildcard_encountered=bool(record.get("wildcard_encountered", False)),
            executed=tuple(record.get("executed", ())),
            unmet_coverage=tuple(record.get("unmet_coverage", ())),
            cut_holes=tuple(
                (str(name), int(depth)) for name, depth in record.get("cut_holes", ())
            ),
            fingerprint=record.get("fingerprint"),
            pattern=(
                None
                if pattern is None
                else tuple((int(pos), int(digit)) for pos, digit in pattern)
            ),
            new_holes=tuple(
                (str(name), tuple(str(action) for action in actions))
                for name, actions in record.get("new_holes", ())
            ),
        )


class VerdictStore:
    """Durable candidate-verdict memo: journal + projection + recency cache."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        # One mutex serialises lookups and records: the SQLite connection
        # is shared across the thread backend's workers, and the journal
        # handle's seek/write sequence must not interleave within a process
        # (cross-process interleaving is handled by flock).
        self._mutex = threading.Lock()
        self.journal = VerdictJournal(os.path.join(self.path, JOURNAL_NAME))
        self.projection = self._open_projection()
        self._applied_size = 0
        self._recent: Dict[str, StoredRun] = {}
        with self._mutex:
            self._catch_up()

    # ------------------------------------------------------------- projection

    def _open_projection(self) -> SqliteProjection:
        projection_path = os.path.join(self.path, PROJECTION_NAME)
        try:
            return SqliteProjection(projection_path)
        except sqlite3.Error:
            # Corrupt projection file: it is disposable — rebuild from scratch.
            try:
                os.unlink(projection_path)
            except OSError:
                pass
            return SqliteProjection(projection_path)

    def _catch_up(self) -> None:
        try:
            self.projection.catch_up(self.journal)
        except sqlite3.Error:
            self.projection.close()
            self.projection = self._open_projection()
            self.projection.catch_up(self.journal)
        self._applied_size = self.journal.size()

    # ------------------------------------------------------------------- read

    def lookup(
        self, system_sig: str, flags_sig: str, assignment: Assignment
    ) -> Optional[StoredRun]:
        key = candidate_key(system_sig, flags_sig, assignment)
        hit = self._recent.get(key)
        if hit is not None:
            return hit
        with self._mutex:
            # Another process may have appended since our last catch-up; a
            # cheap stat tells us whether the projection could be stale.
            if self.journal.size() > self._applied_size:
                self._catch_up()
            record = self.projection.get(key)
            if record is None:
                return None
            run = StoredRun.from_record(record)
            self._recent[key] = run
            return run

    def __len__(self) -> int:
        with self._mutex:
            if self.journal.size() > self._applied_size:
                self._catch_up()
            return self.projection.count()

    # ------------------------------------------------------------------ write

    def record(
        self,
        system_sig: str,
        flags_sig: str,
        assignment: Assignment,
        run: StoredRun,
    ) -> None:
        key = candidate_key(system_sig, flags_sig, assignment)
        record = {"key": key}
        record.update(run.to_record())
        with self._mutex:
            self.journal.append(record)
            self._recent[key] = run

    # ---------------------------------------------------------------- cleanup

    def close(self) -> None:
        with self._mutex:
            try:
                self._catch_up()
            finally:
                self.projection.close()
                self.journal.close()

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_store(path: str) -> VerdictStore:
    """Open (creating if needed) the verdict store rooted at *path*."""

    return VerdictStore(path)


def merge_assignment(
    holes: Sequence[Any], digits: Iterable[int]
) -> Assignment:
    """Name-key a positional digit vector against a hole snapshot."""

    pairs: List[Tuple[str, int]] = []
    for position, digit in enumerate(digits):
        pairs.append((holes[position].name, int(digit)))
    return tuple(sorted(pairs))
