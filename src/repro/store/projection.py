"""SQLite read projection over the verdict journal.

The projection is a *disposable* materialised view: a ``verdicts`` table
keyed by candidate key, plus a ``meta`` row remembering how many journal
bytes have been applied.  ``catch_up`` replays any new journal suffix
inside a single ``BEGIN IMMEDIATE`` transaction, so concurrent readers
in other processes either see the old offset or the new one — never a
half-applied batch.  If the SQLite file is deleted or corrupted it is
rebuilt from the journal (see :meth:`rebuild` and
``VerdictStore.__init__``).
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Optional

from repro.store.journal import VerdictJournal

_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    key TEXT PRIMARY KEY,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    journal_offset INTEGER NOT NULL
);
INSERT OR IGNORE INTO meta (id, journal_offset) VALUES (1, 0);
"""


class SqliteProjection:
    """O(1) key -> record lookup, projected from a :class:`VerdictJournal`."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0, check_same_thread=False)
        # The journal is the source of truth; losing the projection on a
        # crash only costs a rebuild, so trade durability for speed.
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------- read

    def applied_offset(self) -> int:
        row = self._conn.execute(
            "SELECT journal_offset FROM meta WHERE id = 1"
        ).fetchone()
        return int(row[0]) if row else 0

    def get(self, key: str) -> Optional[dict]:
        row = self._conn.execute(
            "SELECT record FROM verdicts WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        record = json.loads(row[0])
        return record if isinstance(record, dict) else None

    def count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0])

    # ------------------------------------------------------------------ write

    def catch_up(self, journal: VerdictJournal) -> int:
        """Apply any journal suffix not yet projected; returns records applied."""

        applied = 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            offset = self.applied_offset()
            for end_offset, record in journal.replay(offset):
                key = record.get("key")
                if isinstance(key, str):
                    self._conn.execute(
                        "INSERT OR REPLACE INTO verdicts (key, record) VALUES (?, ?)",
                        (key, json.dumps(record, sort_keys=True, separators=(",", ":"))),
                    )
                    applied += 1
                offset = end_offset
            self._conn.execute(
                "UPDATE meta SET journal_offset = ? WHERE id = 1", (offset,)
            )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return applied

    def rebuild(self, journal: VerdictJournal) -> int:
        """Discard the projected state and re-apply the journal from byte 0."""

        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute("DELETE FROM verdicts")
            self._conn.execute("UPDATE meta SET journal_offset = 0 WHERE id = 1")
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return self.catch_up(journal)

    # ---------------------------------------------------------------- cleanup

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteProjection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
