"""Append-only JSONL journal — the verdict store's source of truth.

One record per line, appended atomically under an advisory ``flock``.
A writer killed mid-append leaves a *torn* trailing line; the journal
repairs it on the next locked append (terminates the torn line so it
becomes an ignorable garbage line) and readers skip unparseable lines,
so a crash can lose at most the record being written — never corrupt
earlier history.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, Optional, Tuple

try:  # pragma: no cover - exercised only on platforms without fcntl
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]


class VerdictJournal:
    """Append-only JSONL file with locked atomic appends and torn-tail repair."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # "a+b": writes always append (O_APPEND) while the handle stays
        # readable for the torn-tail check.
        self._handle: Optional[IO[bytes]] = open(self.path, "a+b")

    # ------------------------------------------------------------------ write

    def append(self, record: dict) -> int:
        """Append one record; returns the journal size after the append."""

        if self._handle is None:
            raise ValueError("journal is closed")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        data = line.encode("utf-8") + b"\n"
        handle = self._handle
        self._lock(handle)
        try:
            self._repair_torn_tail(handle)
            handle.seek(0, os.SEEK_END)
            handle.write(data)
            handle.flush()
            return handle.tell()
        finally:
            self._unlock(handle)

    def _repair_torn_tail(self, handle: IO[bytes]) -> None:
        # A torn line (writer killed mid-append) means the file does not end
        # with a newline.  Terminate it so the garbage stays confined to one
        # line that readers skip, instead of merging with the next record.
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) != b"\n":
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n")
            handle.flush()

    @staticmethod
    def _lock(handle: IO[bytes]) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)

    @staticmethod
    def _unlock(handle: IO[bytes]) -> None:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------- read

    def size(self) -> int:
        try:
            return os.stat(self.path).st_size
        except OSError:
            return 0

    def replay(self, offset: int = 0) -> Iterator[Tuple[int, dict]]:
        """Yield ``(end_offset, record)`` for each intact record past *offset*.

        A torn trailing line (no newline terminator yet) is left alone — its
        offset is not consumed, so a later replay picks it up once the
        repairing writer terminates it.  Unparseable *complete* lines (the
        repaired remains of a torn write) are skipped but their bytes are
        consumed.
        """

        try:
            reader = open(self.path, "rb")
        except OSError:
            return
        with reader:
            reader.seek(offset)
            position = offset
            for raw in reader:
                position += len(raw)
                if not raw.endswith(b"\n"):
                    return  # torn tail: not yet terminated, do not consume
                stripped = raw.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue  # repaired torn line: consume and ignore
                if isinstance(record, dict):
                    yield position, record

    # ---------------------------------------------------------------- cleanup

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "VerdictJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
