"""Durable cross-run verdict store (CQRS: journal + SQLite projection).

Synthesis re-verifies the same candidates over and over: repeated CLI
runs, overlapping matrix cells, warm benchmark passes, and distributed
workers all dispatch model-checker runs whose verdicts were already
computed somewhere.  This package memoises those verdicts *durably*:

* :mod:`repro.store.journal` — an append-only ``journal.jsonl`` is the
  source of truth.  Appends are atomic under an advisory file lock, a
  torn trailing line (a killed writer) is detected and repaired, and the
  journal is the only artifact that must survive.
* :mod:`repro.store.projection` — a SQLite table projected *from* the
  journal gives O(1) key lookup.  The projection is disposable: it can
  be deleted (or corrupted) at any time and is rebuilt by replaying the
  journal.
* :mod:`repro.store.store` — :class:`VerdictStore` front end: verdicts
  are keyed by ``(system signature, flags signature, candidate
  assignment)`` where the assignment is *name-keyed* (hole name ->
  action index), so lookups are independent of hole discovery order
  across backends and processes.

The engine integration (what is stored for one model-checker run and how
a hit replays) lives in :mod:`repro.core.engine`; this package knows
nothing about transition systems beyond their signature surface.
"""

from repro.store.journal import VerdictJournal
from repro.store.projection import SqliteProjection
from repro.store.store import (
    StoredRun,
    VerdictStore,
    candidate_key,
    flags_signature,
    open_store,
    system_signature,
)

__all__ = [
    "SqliteProjection",
    "StoredRun",
    "VerdictJournal",
    "VerdictStore",
    "candidate_key",
    "flags_signature",
    "open_store",
    "system_signature",
]
