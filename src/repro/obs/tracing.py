"""Structured trace spans with a pluggable event sink.

Event schema (one JSON object per line in the JSONL sink):

* every event carries ``t`` — seconds since the tracer's monotonic
  origin — and ``type``;
* ``span_start``: ``id`` (int, unique per tracer), ``parent`` (id or
  null), ``name``, plus caller attributes;
* ``span_end``: ``id``, ``name``, ``dur`` (seconds), plus attributes
  attached via ``Span.set`` (e.g. a verdict known only at exit);
* ``phase``: ``name``, ``seconds`` — aggregated time attributed to a
  named kernel phase (canonicalise, expand, …) without per-occurrence
  span overhead; ``span`` links it to the enclosing span;
* ``progress``: throttled live counters (see ``obs.progress``);
* ``meta``: one-off annotations (command line, protocol, config).

Spans nest per-thread via a thread-local stack; a tracer-wide
``default_parent`` lets worker threads parent their spans under the
run's root span.  The JSONL sink batches writes and fsyncs per batch —
kill-safe in the same way as the experiments journal.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Optional

__all__ = ["JsonlTraceSink", "NullSink", "Span", "Tracer"]


def _safe(value):
    """Coerce an attribute to something JSON-serialisable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _safe(v) for k, v in value.items()}
    return str(value)


class NullSink:
    """Swallows events; lets a tracer exist without a trace file."""

    path = None

    def __init__(self) -> None:
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self.events_written += 1

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """Append-only JSONL sink with batched, fsynced writes.

    Events buffer in memory and hit disk every ``flush_every`` events
    (and on ``flush``/``close``); each disk write ends with an fsync so
    a SIGKILL loses at most one unflushed batch, mirroring the matrix
    runner's journal guarantees.
    """

    def __init__(self, path, flush_every: int = 128) -> None:
        self.path = str(path)
        self.events_written = 0
        self._flush_every = max(1, int(flush_every))
        self._buffer = []
        self._lock = threading.Lock()
        self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            self._buffer.append(line)
            self.events_written += 1
            if len(self._buffer) >= self._flush_every:
                self._drain()

    def _drain(self) -> None:
        if not self._buffer or self._handle.closed:
            return
        self._handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def flush(self) -> None:
        with self._lock:
            self._drain()

    def close(self) -> None:
        with self._lock:
            self._drain()
            if not self._handle.closed:
                self._handle.close()


class Span:
    """Context manager for one traced interval."""

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "parent", "_start", "_end_attrs",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent = None
        self._start = 0.0
        self._end_attrs = None

    def set(self, **attrs) -> None:
        """Attach attributes reported on the span_end event."""
        if self._end_attrs is None:
            self._end_attrs = {}
        self._end_attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = next(tracer._ids)
        stack = tracer._stack()
        self.parent = stack[-1] if stack else tracer.default_parent
        self._start = tracer.clock()
        event = {
            "t": round(self._start - tracer.origin, 6),
            "type": "span_start",
            "id": self.span_id,
            "parent": self.parent,
            "name": self.name,
        }
        for key, value in self.attrs.items():
            event[key] = _safe(value)
        tracer.sink.emit(event)
        stack.append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        now = tracer.clock()
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event = {
            "t": round(now - tracer.origin, 6),
            "type": "span_end",
            "id": self.span_id,
            "name": self.name,
            "dur": round(now - self._start, 6),
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self._end_attrs:
            for key, value in self._end_attrs.items():
                event[key] = _safe(value)
        tracer.sink.emit(event)


class Tracer:
    """Emits span/phase/progress/meta events against a monotonic origin."""

    def __init__(self, sink=None, clock=time.monotonic) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.clock = clock
        self.origin = clock()
        self.default_parent: Optional[int] = None
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else self.default_parent

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, type_: str, **fields) -> None:
        event = {
            "t": round(self.clock() - self.origin, 6),
            "type": type_,
            "span": self.current_span(),
        }
        for key, value in fields.items():
            event[key] = _safe(value)
        self.sink.emit(event)

    def phase(self, name: str, seconds: float, **fields) -> None:
        """Report aggregate time spent in a named phase."""
        self.event("phase", name=name, seconds=round(seconds, 6), **fields)

    def meta(self, **fields) -> None:
        self.event("meta", **fields)

    @property
    def events_written(self) -> int:
        return self.sink.events_written

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()
