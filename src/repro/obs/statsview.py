"""Phase-attributed time/count statistics from a trace file.

``python -m repro stats <trace.jsonl>`` renders, per span name and per
kernel phase, the event count, total seconds, mean milliseconds, and the
share of the run each accounts for — plus an overall *attribution*
figure: the fraction of the root span's wall-clock covered by at least
one named child span.  The acceptance bar for the instrumented synth
path is ≥95% attribution.

The loader is as forgiving as the journal loader: blank lines are
skipped and a torn final line (the process was killed mid-batch) is
ignored; a torn line anywhere else is a corrupt trace and raises.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceStats", "load_events", "build_stats", "render_stats"]


def load_events(path) -> List[dict]:
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                continue  # torn final line from a killed batch
            raise ValueError(f"{path}: corrupt trace event on line {index + 1}")
        if isinstance(event, dict):
            events.append(event)
    return events


@dataclass
class _Aggregate:
    kind: str
    count: int = 0
    total: float = 0.0

    @property
    def mean_ms(self) -> float:
        return (self.total / self.count) * 1000.0 if self.count else 0.0


@dataclass
class TraceStats:
    """Aggregated view of one trace file."""

    events: int = 0
    #: (name, kind) -> aggregate, kind in {"span", "phase"}
    aggregates: Dict[Tuple[str, str], _Aggregate] = field(default_factory=dict)
    #: ids of spans that never closed (process killed mid-span)
    open_spans: int = 0
    progress_events: int = 0
    root_name: Optional[str] = None
    root_seconds: float = 0.0
    #: fraction of root wall-clock covered by named child spans/phases
    attribution: Optional[float] = None
    trace_seconds: float = 0.0

    def total_for(self, name: str, kind: str = "span") -> float:
        agg = self.aggregates.get((name, kind))
        return agg.total if agg else 0.0

    def count_for(self, name: str, kind: str = "span") -> int:
        agg = self.aggregates.get((name, kind))
        return agg.count if agg else 0


def _union_seconds(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    return total + (cur_end - cur_start)


def build_stats(events: List[dict]) -> TraceStats:
    stats = TraceStats(events=len(events))
    starts: Dict[int, dict] = {}
    child_intervals: List[Tuple[float, float]] = []
    phase_blocks: List[Tuple[float, float]] = []
    root: Optional[dict] = None
    last_t = 0.0

    for event in events:
        t = float(event.get("t", 0.0))
        last_t = max(last_t, t)
        etype = event.get("type")
        if etype == "span_start":
            starts[event["id"]] = event
            if event.get("parent") is None and root is None:
                root = event
        elif etype == "span_end":
            start = starts.pop(event.get("id"), None)
            name = event.get("name", "?")
            dur = float(event.get("dur", 0.0))
            agg = stats.aggregates.setdefault((name, "span"), _Aggregate("span"))
            agg.count += 1
            agg.total += dur
            if start is not None:
                begin = float(start.get("t", t - dur))
                if root is not None and start is root:
                    stats.root_name = name
                    stats.root_seconds = dur
                elif root is not None:
                    child_intervals.append((begin, begin + dur))
        elif etype == "phase":
            name = event.get("name", "?")
            seconds = float(event.get("seconds", 0.0))
            agg = stats.aggregates.setdefault((name, "phase"), _Aggregate("phase"))
            agg.count += 1
            agg.total += seconds
            # A phase report covers time already inside its enclosing
            # span, but only child *spans* feed the union; when phases
            # fire directly under the root (verify runs), credit them
            # as a synthetic interval ending at the report time.
            if event.get("span") is not None:
                phase_blocks.append((max(0.0, t - seconds), t))
        elif etype == "progress":
            stats.progress_events += 1

    stats.open_spans = len(starts)
    stats.trace_seconds = last_t
    if stats.root_name is not None and stats.root_seconds > 0:
        root_begin = float(root.get("t", 0.0))
        root_end = root_begin + stats.root_seconds
        clipped = [
            (max(start, root_begin), min(end, root_end))
            for start, end in child_intervals + phase_blocks
            if end > root_begin and start < root_end
        ]
        covered = _union_seconds([iv for iv in clipped if iv[1] > iv[0]])
        stats.attribution = min(1.0, covered / stats.root_seconds)
    return stats


def render_stats(events: List[dict], source: Optional[str] = None) -> str:
    """Aligned plain-text stats table for ``python -m repro stats``."""
    stats = build_stats(events)
    header = []
    label = f"{source} " if source else ""
    header.append(
        f"trace: {label}({stats.events:,} events, {stats.trace_seconds:.2f}s)"
    )
    if stats.root_name is not None:
        header.append(
            f"root span: {stats.root_name} ({stats.root_seconds:.2f}s)"
        )
    if stats.attribution is not None:
        header.append(
            f"attributed to named phases: {stats.attribution * 100:.1f}%"
        )
    if stats.progress_events:
        header.append(f"progress events: {stats.progress_events:,}")
    if stats.open_spans:
        header.append(f"unclosed spans: {stats.open_spans} (torn trace?)")

    columns = ("Name", "Kind", "Count", "Total s", "Mean ms", "% of run")
    rows = []
    root_total = stats.root_seconds
    ordered = sorted(
        stats.aggregates.items(), key=lambda item: -item[1].total
    )
    for (name, kind), agg in ordered:
        share = ""
        if root_total > 0:
            share = f"{agg.total / root_total * 100:.1f}%"
        rows.append((
            name,
            kind,
            f"{agg.count:,}",
            f"{agg.total:.4f}",
            f"{agg.mean_ms:.3f}",
            share,
        ))

    widths = [
        max(len(columns[i]), *(len(row[i]) for row in rows))
        if rows
        else len(columns[i])
        for i in range(len(columns))
    ]
    lines = list(header)
    lines.append("")
    lines.append("  ".join(columns[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)
