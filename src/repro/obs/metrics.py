"""Metrics registry: named counters, gauges, and histograms.

Design constraints, in order of importance:

* **Hot-loop cheap.** Call sites bind a handle once (``counter = registry.
  counter("mc_states_visited")``) and then call ``handle.inc()`` — a single
  attribute store, no dict lookup, no lock.  Handles are plain objects with
  ``__slots__``; the registry lock guards only registration and snapshots.
* **Mergeable.** ``snapshot()`` produces a plain-dict, JSON- and
  pickle-safe view; ``merge()`` folds a snapshot back into a registry.
  This is how the distributed coordinator aggregates per-batch deltas
  shipped in ``BatchResult`` — counters and histograms add, gauges take
  the maximum (every gauge in this codebase is a high-water mark).
* **Zero dependencies.** Standard library only.

Thread-safety note: handle updates are *not* individually locked.  Every
hot-path update in this repo already happens under an engine lock (the
sequential backend is single-threaded; the thread backend serialises
``handle_result``; the process backend merges snapshots in the
coordinator), so per-update locking would buy nothing and cost plenty.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
]

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """Monotonic counter.  ``inc`` is the only mutator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value with high-water-mark merge semantics."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def track_max(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram of observed values (typically seconds)."""

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: Mapping[str, object]) -> str:
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class _Family:
    """All series of one metric name: label-key -> handle."""

    __slots__ = ("name", "kind", "help", "label_names", "series", "buckets")

    def __init__(self, name, kind, help_text, label_names, buckets):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self.series: Dict[str, object] = {}
        self.buckets = buckets

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self.buckets or DEFAULT_BUCKETS)
        return _KINDS[self.kind]()

    def child(self, key: str):
        handle = self.series.get(key)
        if handle is None:
            handle = self.series[key] = self._make()
        return handle


class MetricsRegistry:
    """Factory and aggregation point for metric handles.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the same handle (and raises if the kind or
    label names disagree — that is a programming error worth surfacing).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def _family(self, name, kind, help_text, label_names, buckets=None):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, label_names, buckets)
                self._families[name] = family
            elif family.kind != kind or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names!r}"
                )
            return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        family = self._family(name, "counter", help, sorted(labels))
        return family.child(_label_key(labels))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        family = self._family(name, "gauge", help, sorted(labels))
        return family.child(_label_key(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        family = self._family(name, "histogram", help, sorted(labels), buckets)
        return family.child(_label_key(labels))

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict view: name -> {kind, help, series: {labelkey: data}}."""
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, dict] = {}
        for family in families:
            series = {}
            for key, handle in family.series.items():
                if family.kind == "histogram":
                    series[key] = {
                        "count": handle.count,
                        "total": handle.total,
                        "min": handle.minimum,
                        "max": handle.maximum,
                        "buckets": list(handle.buckets),
                        "counts": list(handle.counts),
                    }
                else:
                    series[key] = handle.value
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def merge(self, snapshot: Mapping[str, dict]) -> None:
        """Fold a ``snapshot()`` (or ``diff_snapshots``) into this registry.

        Counters and histograms accumulate; gauges keep the maximum,
        so worker high-water marks survive aggregation.
        """
        for name, family_data in snapshot.items():
            kind = family_data["kind"]
            family = self._family(
                name, kind, family_data.get("help", ""),
                _label_names_of(family_data),
            )
            for key, data in family_data["series"].items():
                if kind == "histogram" and family.buckets is None:
                    family.buckets = tuple(data["buckets"])
                handle = family.child(key)
                if kind == "counter":
                    handle.inc(data)
                elif kind == "gauge":
                    handle.track_max(data)
                else:
                    handle.count += data["count"]
                    handle.total += data["total"]
                    if data["min"] is not None:
                        if handle.minimum is None or data["min"] < handle.minimum:
                            handle.minimum = data["min"]
                    if data["max"] is not None:
                        if handle.maximum is None or data["max"] > handle.maximum:
                            handle.maximum = data["max"]
                    if list(handle.buckets) == data["buckets"]:
                        for i, c in enumerate(data["counts"]):
                            handle.counts[i] += c

    def render(self) -> str:
        """Human-readable one-line-per-series text dump, sorted by name."""
        lines = []
        for name, family in sorted(self.snapshot().items()):
            for key, data in sorted(family["series"].items()):
                label = f"{{{key}}}" if key else ""
                if family["kind"] == "histogram":
                    mean = data["total"] / data["count"] if data["count"] else 0.0
                    value = (
                        f"count={data['count']} total={data['total']:.4f}s "
                        f"mean={mean * 1000:.3f}ms"
                    )
                else:
                    value = str(data)
                lines.append(f"{name}{label} {value}")
        return "\n".join(lines)


def _label_names_of(family_data: Mapping[str, dict]) -> Iterable[str]:
    for key in family_data["series"]:
        if key:
            return [part.split("=", 1)[0] for part in key.split(",")]
        return []
    return []


def diff_snapshots(
    before: Mapping[str, dict], after: Mapping[str, dict]
) -> Dict[str, dict]:
    """``after - before``, suitable for shipping as a per-batch delta.

    Counters and histogram counts subtract; gauges keep the ``after``
    value (a high-water mark never regresses).  Families or series
    absent from ``before`` pass through unchanged.
    """
    out: Dict[str, dict] = {}
    for name, family_after in after.items():
        family_before = before.get(name)
        kind = family_after["kind"]
        series_out = {}
        for key, data in family_after["series"].items():
            prior = (family_before or {"series": {}})["series"].get(key)
            if prior is None:
                series_out[key] = data
            elif kind == "counter":
                delta = data - prior
                if delta:
                    series_out[key] = delta
            elif kind == "gauge":
                series_out[key] = data
            else:
                count = data["count"] - prior["count"]
                if count:
                    series_out[key] = {
                        "count": count,
                        "total": data["total"] - prior["total"],
                        "min": data["min"],
                        "max": data["max"],
                        "buckets": data["buckets"],
                        "counts": [
                            c - p for c, p in zip(data["counts"], prior["counts"])
                        ],
                    }
        if series_out:
            out[name] = {
                "kind": kind,
                "help": family_after.get("help", ""),
                "series": series_out,
            }
    return out
