"""``repro.obs`` — zero-dependency observability: metrics, traces, progress.

The :class:`Telemetry` facade bundles the three concerns behind one
handle that plumbs through every layer (kernel, engine, backends,
matrix runner, CLI).  The disabled path is the :data:`NULL_TELEMETRY`
singleton: ``enabled`` is False and every method is a no-op, so
instrumented call sites decide once at setup time and the hot loops
pay at most a predicate check per state.

Construction::

    tele = Telemetry.create(trace_path="run.jsonl", progress=True)
    with tele.span("synth", skeleton="msi-small"):
        ...
    tele.close()

or from a :class:`~repro.core.engine.SynthesisConfig` via
:meth:`Telemetry.from_config` — which is what the engines do when the
config enables telemetry and the caller did not hand one down.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import MetricsRegistry, diff_snapshots
from repro.obs.progress import ProgressReporter
from repro.obs.statsview import build_stats, load_events, render_stats
from repro.obs.tracing import JsonlTraceSink, NullSink, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "ProgressReporter",
    "Telemetry",
    "Tracer",
    "build_stats",
    "diff_snapshots",
    "load_events",
    "render_stats",
]


class _NullSpan:
    """Shared no-op context manager returned by the null telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None

    def set(self, **attrs):
        pass


_NULL_SPAN = _NullSpan()


class _NullTelemetry:
    """Disabled telemetry: one shared instance, every path a no-op."""

    __slots__ = ()

    enabled = False
    metrics = None
    tracer = None
    progress = None
    trace_path = None

    def span(self, name, **attrs):
        return _NULL_SPAN

    def event(self, type_, **fields):
        pass

    def phase(self, name, seconds, **fields):
        pass

    def meta(self, **fields):
        pass

    @property
    def events_written(self):
        return 0

    def write_metrics(self, path):
        pass

    def flush(self):
        pass

    def close(self):
        pass


NULL_TELEMETRY = _NullTelemetry()


class Telemetry:
    """Live telemetry: a metrics registry, a tracer, optional progress."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(NullSink())
        self.progress = progress
        self.trace_path = self.tracer.sink.path

    @classmethod
    def create(
        cls,
        trace_path=None,
        progress: bool = False,
        progress_interval: float = 1.0,
        stream=None,
        verbose: bool = False,
    ) -> "Telemetry":
        """Build a live telemetry bundle.

        ``verbose`` routes through :func:`~repro.util.logging.
        enable_verbose_logging`, making the telemetry config the single
        switchboard for run visibility.
        """
        if verbose:
            from repro.util.logging import enable_verbose_logging

            enable_verbose_logging()
        sink = JsonlTraceSink(trace_path) if trace_path else NullSink()
        tracer = Tracer(sink)
        reporter = None
        if progress:
            reporter = ProgressReporter(
                interval=progress_interval, stream=stream, tracer=tracer
            )
        return cls(tracer=tracer, progress=reporter)

    @classmethod
    def from_config(cls, config, stream=None, worker_id=None) -> "Telemetry":
        """Build from a ``SynthesisConfig``'s telemetry fields.

        Workers pass ``worker_id`` to get a private sink next to the
        coordinator's (``<trace_path>.worker-<id>``); worker progress is
        always off — interleaved stderr from N processes is noise.
        """
        trace_path = config.trace_path
        if trace_path and worker_id is not None:
            trace_path = f"{trace_path}.worker-{worker_id}"
        return cls.create(
            trace_path=trace_path,
            progress=bool(config.progress) and worker_id is None,
            progress_interval=config.progress_interval,
            stream=stream,
        )

    # -- delegation -----------------------------------------------------

    def span(self, name, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, type_, **fields):
        self.tracer.event(type_, **fields)

    def phase(self, name, seconds, **fields):
        self.tracer.phase(name, seconds, **fields)

    def meta(self, **fields):
        self.tracer.meta(**fields)

    @property
    def events_written(self) -> int:
        return self.tracer.events_written

    def write_metrics(self, path) -> None:
        """Dump the metrics snapshot as pretty JSON (``--metrics-out``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def flush(self) -> None:
        self.tracer.flush()

    def close(self) -> None:
        if self.progress is not None:
            self.progress.finish()
        self.tracer.close()
