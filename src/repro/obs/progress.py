"""Throttled live progress reporting.

``ProgressReporter.tick(**fields)`` is safe to call from a hot loop:
the time check comes first, so a suppressed tick costs one clock read
and one comparison.  When the interval (default 1s) has elapsed, the
current counters render as a stderr line — carriage-return rewritten
in-place on a TTY, one plain line per emission otherwise — and, when a
tracer is attached, also land in the trace as a ``progress`` event so
a future service tier can stream them.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


class ProgressReporter:
    """Time-throttled counter display for long runs."""

    def __init__(
        self,
        interval: float = 1.0,
        stream=None,
        tracer=None,
        clock=time.monotonic,
    ) -> None:
        self.interval = float(interval)
        self.stream = stream if stream is not None else sys.stderr
        self.tracer = tracer
        self.clock = clock
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False
        self._next_emit = clock()  # first tick emits immediately
        self._fields = {}
        self._dirty = False
        self._line_open = False
        self.emissions = 0

    def tick(self, **fields) -> bool:
        """Fold ``fields`` into the live counters; emit if due.

        Returns True when a line was emitted.  Fields accumulate across
        suppressed ticks (last value wins per key), so sources with
        different field sets — the kernel's states/frontier/depth and
        the engine's evaluated/solutions — share one display line.
        """
        self._fields.update(fields)
        self._dirty = True
        now = self.clock()
        if now < self._next_emit:
            return False
        self._next_emit = now + self.interval
        self._emit()
        return True

    def _emit(self) -> None:
        self._dirty = False
        self.emissions += 1
        text = " ".join(f"{k}={_fmt(v)}" for k, v in self._fields.items())
        line = f"[progress] {text}"
        try:
            if self._tty:
                # Pad to clear leftovers from a longer previous line.
                self.stream.write("\r" + line.ljust(78))
                self._line_open = True
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
        if self.tracer is not None:
            self.tracer.event("progress", **self._fields)

    def finish(self, **fields) -> None:
        """Emit one final line (and newline on a TTY) at run end."""
        if fields:
            self._fields.update(fields)
            self._dirty = True
        if self._dirty:
            self._emit()
        if self._tty and self._line_open:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._line_open = False
