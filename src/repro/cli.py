"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``verify <protocol>`` — model check a complete protocol and print the
  verdict, state counts, and (on failure) the counterexample trace.
* ``synth <skeleton>`` — run hole synthesis on a skeleton and print the
  report and behavioural solution groups.  Defaults to the paper's
  procedure plus both sound accelerations (conflict-generalised pruning,
  prefix-reuse search); ``--no-generalise`` / ``--no-prefix-reuse`` /
  ``--naive`` walk the ablation ladder back to the paper and beyond.
* ``matrix`` — run a declarative experiment matrix (a preset or a JSON
  spec) with a resumable journal; see :mod:`repro.experiments`.
* ``fuzz`` — generate seeded random holed protocols and differential-test
  every acceleration/backend configuration against every other, shrinking
  divergences to corpus reproducers; see :mod:`repro.fuzz`.
* ``list`` — list available protocols and skeletons with their hole
  counts and supported replica ranges.

Examples::

    python -m repro verify msi --caches 3 --evictions
    python -m repro verify german --procs 2
    python -m repro synth msi-small --backend processes --workers 4
    python -m repro synth msi-small --store runs/msi-store
    python -m repro synth moesi-small --threads 4
    python -m repro synth german-small --no-generalise --no-prefix-reuse
    python -m repro matrix --preset smoke
    python -m repro matrix --preset table1 --out matrix-runs/table1
    python -m repro fuzz --seed 0 --count 50
    python -m repro fuzz --count 5 --lattice full --no-shrink

The full flag reference lives in ``docs/cli.md``; the matrix-spec format
in ``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.grouping import describe_groups
from repro.errors import CliError
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.errors import ExperimentError
from repro.experiments import (
    MatrixRunner,
    MatrixSpec,
    expand_matrix,
    load_preset,
    preset_names,
)
from repro.mc.kernel import EXPLORER_STRATEGIES, ExplorationLimits, make_explorer
from repro.obs import Telemetry, load_events, render_stats
from repro.protocols.catalog import (
    PROTOCOL_BUILDERS,
    PROTOCOL_CATALOG,
    SKELETON_BUILDERS,
    SKELETON_CATALOG,
    build_skeleton_with_holes,
)
from repro.protocols.msi.defs import format_state

#: complete protocols: name -> builder(n, **kwargs) — the catalog registry
PROTOCOLS: Dict[str, Callable] = PROTOCOL_BUILDERS

#: skeletons: name -> builder(n) returning a TransitionSystem
SKELETONS: Dict[str, Callable] = SKELETON_BUILDERS

#: accelerations the synth command can request explicitly, mapped to
#: (flag, consequence-of-standing-down); the warning's *reason* comes
#: from SynthesisConfig.resolved_accelerations(), the single stand-down
#: table
_ACCELERATION_FLAGS: Dict[str, tuple] = {
    "family": ("--family", "falling back to the 1-by-1 enumeration"),
    "partial_order": ("--por", "candidate checks run without reduction"),
    "store": ("--store", "verdicts will be neither recorded nor replayed"),
}


def _add_telemetry_flags(parser: argparse.ArgumentParser,
                         optional_trace_value: bool = False) -> None:
    """The shared observability flag group (verify / synth / matrix)."""
    group = parser.add_argument_group("observability")
    if optional_trace_value:
        group.add_argument(
            "--trace", metavar="FILE", nargs="?", const="", default=None,
            help="write a structured JSONL trace; with no FILE, the trace "
                 "lands at <out-dir>/trace.jsonl.  Summarise it with "
                 "'repro stats FILE'",
        )
    else:
        group.add_argument(
            "--trace", metavar="FILE", default=None,
            help="write a structured JSONL trace of the run to FILE "
                 "(summarise it with 'repro stats FILE')",
        )
    group.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the run's aggregated metrics registry as JSON to FILE",
    )
    progress = group.add_mutually_exclusive_group()
    progress.add_argument(
        "--progress", action="store_true",
        help="emit a throttled live progress line on stderr "
             "(default: on when stderr is a TTY)",
    )
    progress.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line",
    )
    group.add_argument(
        "--verbose", action="store_true",
        help="enable debug logging (repro.util.logging)",
    )


def _progress_requested(args: argparse.Namespace) -> bool:
    if args.no_progress:
        return False
    return bool(args.progress) or sys.stderr.isatty()


def _build_telemetry(
    args: argparse.Namespace, default_trace: Optional[str] = None
) -> Optional[Telemetry]:
    """The CLI-owned telemetry bundle, or None when every switch is off.

    ``--trace`` with no value (matrix) arrives as ``""`` and resolves to
    ``default_trace``.  ``--verbose`` routes through
    :meth:`Telemetry.create`, which is the logging switchboard; when no
    telemetry is active it is applied here so the flag still works alone.
    """
    trace = args.trace
    if trace == "":
        trace = default_trace
    progress = _progress_requested(args)
    if trace is None and args.metrics_out is None and not progress:
        if args.verbose:
            from repro.util.logging import enable_verbose_logging

            enable_verbose_logging()
        return None
    return Telemetry.create(
        trace_path=trace,
        progress=progress,
        stream=sys.stderr,
        verbose=args.verbose,
    )


def _finish_telemetry(tele: Optional[Telemetry],
                      args: argparse.Namespace) -> None:
    """Write ``--metrics-out`` and close the CLI-owned bundle."""
    if tele is None:
        return
    if args.metrics_out is not None:
        tele.write_metrics(args.metrics_out)
    tele.close()


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VerC3 reproduction: explicit state synthesis of concurrent systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="model check a complete protocol")
    verify.add_argument("protocol", choices=sorted(PROTOCOLS))
    verify.add_argument("--caches", "--procs", dest="replicas", type=int, default=2)
    verify.add_argument("--evictions", action="store_true")
    verify.add_argument("--no-symmetry", action="store_true")
    verify.add_argument(
        "--explorer", choices=sorted(EXPLORER_STRATEGIES), default=None,
        help="frontier strategy (default: bfs, whose traces are minimal)",
    )
    verify.add_argument("--dfs", action="store_true",
                        help="shorthand for --explorer dfs")
    por_group = verify.add_mutually_exclusive_group()
    por_group.add_argument(
        "--por", action="store_true",
        help="enable footprint-based partial-order reduction (fewer "
             "states visited; the footprint probe costs a few seconds)",
    )
    por_group.add_argument(
        "--no-por", action="store_true",
        help="explicitly disable partial-order reduction (the default)",
    )
    packed_group = verify.add_mutually_exclusive_group()
    packed_group.add_argument(
        "--packed", action="store_true",
        help="run on the packed-state kernel (the default where the "
             "protocol provides a state codec; exact, ~10x faster)",
    )
    packed_group.add_argument(
        "--no-packed", action="store_true",
        help="force the object-path kernel (the ablation baseline)",
    )
    verify.add_argument("--max-states", type=int, default=None)
    _add_telemetry_flags(verify)

    synth = sub.add_parser("synth", help="synthesise holes in a skeleton")
    synth.add_argument("skeleton", choices=sorted(SKELETONS))
    synth.add_argument("--caches", "--procs", dest="replicas", type=int, default=2)
    synth.add_argument(
        "--backend", choices=("sequential", "threads", "processes"), default=None,
        help="evaluation backend; default: sequential, or threads when "
             "--threads > 1.  'processes' is the only backend with real "
             "multi-core wall-clock speedups (see repro.dist)",
    )
    synth.add_argument("--threads", type=int, default=None,
                       help="worker threads for the threads backend "
                            "(default: 4 with --backend threads, else 1)")
    synth.add_argument("--workers", type=int, default=4,
                       help="worker processes for the processes backend")
    synth.add_argument(
        "--explorer", choices=sorted(EXPLORER_STRATEGIES), default="bfs",
        help="model-checker frontier strategy for candidate evaluation "
             "(bfs yields minimal traces, which prune best; dfs is the "
             "ablation)",
    )
    synth.add_argument("--naive", action="store_true", help="disable pruning")
    synth.add_argument(
        "--no-generalise", action="store_true",
        help="record full-width failure patterns (the paper's behaviour) "
             "instead of replay-minimised conflict patterns",
    )
    synth.add_argument(
        "--no-prefix-reuse", action="store_true",
        help="re-explore every candidate from the initial states instead "
             "of resuming from cached shared-prefix explorations",
    )
    synth_por = synth.add_mutually_exclusive_group()
    synth_por.add_argument(
        "--por", action="store_true",
        help="enable footprint-based partial-order reduction in candidate "
             "model checking (fewer states per check; the one-time "
             "footprint probe costs a few seconds)",
    )
    synth_por.add_argument(
        "--no-por", action="store_true",
        help="explicitly disable partial-order reduction (the default)",
    )
    synth_packed = synth.add_mutually_exclusive_group()
    synth_packed.add_argument(
        "--packed", action="store_true",
        help="evaluate candidates on the packed-state kernel (the "
             "default where the protocol provides a state codec)",
    )
    synth_packed.add_argument(
        "--no-packed", action="store_true",
        help="force the object-path kernel for candidate evaluation "
             "(the ablation baseline)",
    )
    synth_family = synth.add_mutually_exclusive_group()
    synth_family.add_argument(
        "--family", action="store_true",
        help="schedule synthesis as a worklist of hole families: each "
             "family is model checked once as a wildcard quotient; "
             "all-fail/all-pass verdicts cover every member in one run "
             "and ambiguous families split (see docs/architecture.md)",
    )
    synth_family.add_argument(
        "--no-family", action="store_true",
        help="explicitly keep the 1-by-1 candidate enumeration "
             "(the default)",
    )
    synth_store = synth.add_mutually_exclusive_group()
    synth_store.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable cross-run verdict store directory: verdicts are "
             "recorded on first evaluation and replayed on later runs "
             "with the same protocol and verdict-affecting flags, so a "
             "warm re-run model checks almost nothing (see "
             "docs/distributed.md)",
    )
    synth_store.add_argument(
        "--no-store", action="store_true",
        help="explicitly run without a verdict store (the default)",
    )
    synth.add_argument("--refined", action="store_true",
                       help="refined trace-based pruning patterns")
    synth.add_argument("--solution-limit", type=int, default=None)
    synth.add_argument("--max-evaluations", type=int, default=None)
    synth.add_argument("--groups", action="store_true",
                       help="fingerprint solutions and print behavioural groups")
    _add_telemetry_flags(synth)

    matrix = sub.add_parser(
        "matrix",
        help="run a declarative experiment matrix (resumable)",
        description="Run a protocol x backend x flags experiment matrix. "
                    "Completed cells are journaled; re-running the same "
                    "matrix against the same --out directory skips them.",
    )
    source = matrix.add_mutually_exclusive_group()
    source.add_argument(
        "--preset", choices=preset_names(), default=None,
        help="a built-in matrix (table1 reproduces table1_output.txt; "
             "smoke is the tiny CI matrix)",
    )
    source.add_argument(
        "--spec", metavar="FILE", default=None,
        help="path to a JSON matrix spec (format: docs/experiments.md)",
    )
    matrix.add_argument(
        "--out", metavar="DIR", default=None,
        help="output directory for journal.jsonl / results.json / "
             "report.md (default: matrix-runs/<matrix-name>)",
    )
    matrix.add_argument(
        "--fresh", action="store_true",
        help="discard an existing journal and re-run every cell",
    )
    matrix_por = matrix.add_mutually_exclusive_group()
    matrix_por.add_argument(
        "--por", action="store_true",
        help="run every cell with partial-order reduction enabled "
             "(overrides the spec; use --fresh or a separate --out so "
             "journaled cells from the other mode are not reused)",
    )
    matrix_por.add_argument(
        "--no-por", action="store_true",
        help="run every cell with partial-order reduction disabled "
             "(overrides the spec; same journal caveat as --por)",
    )
    matrix_packed = matrix.add_mutually_exclusive_group()
    matrix_packed.add_argument(
        "--packed", action="store_true",
        help="run every cell on the packed-state kernel (overrides the "
             "spec; same journal caveat as --por)",
    )
    matrix_packed.add_argument(
        "--no-packed", action="store_true",
        help="run every cell on the object-path kernel (overrides the "
             "spec; same journal caveat as --por)",
    )
    matrix.add_argument(
        "--list-presets", action="store_true",
        help="print the built-in presets and exit",
    )
    _add_telemetry_flags(matrix, optional_trace_value=True)

    fuzz = sub.add_parser(
        "fuzz",
        help="generate random protocols and differential-test the lattice",
        description="Generate seeded random holed protocols and sweep each "
                    "through the acceleration/backend configuration lattice, "
                    "asserting every promise the modes make against each "
                    "other.  Divergent specs are shrunk to minimal "
                    "reproducers and written as corpus files.",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first generator seed (default: 0)")
    fuzz.add_argument("--count", type=int, default=20,
                      help="number of consecutive seeds to sweep "
                           "(default: 20)")
    fuzz.add_argument(
        "--lattice", choices=("ablation", "full", "tier1"),
        default="ablation",
        help="configuration lattice to sweep: 'ablation' (default) pins "
             "every acceleration against a shared reference, 'full' runs "
             "the cartesian corners, 'tier1' is the fast sequential-only "
             "set the checked-in corpus replays",
    )
    shrink_group = fuzz.add_mutually_exclusive_group()
    shrink_group.add_argument(
        "--shrink", action="store_true",
        help="shrink divergent specs to minimal reproducers (the default)",
    )
    shrink_group.add_argument(
        "--no-shrink", action="store_true",
        help="keep divergent specs as generated (faster triage loop)",
    )
    fuzz.add_argument(
        "--corpus-dir", metavar="DIR", default="fuzz-runs/reproducers",
        help="where divergence reproducer files land "
             "(default: fuzz-runs/reproducers)",
    )
    fuzz.add_argument(
        "--journal", metavar="FILE", default=None,
        help="write one deterministic JSON row per spec to FILE "
             "(default: no journal file; rows depend only on the seeds "
             "and lattice, never on timing)",
    )
    fuzz.add_argument("--workers", type=int, default=2,
                      help="thread/process count for the parallel-backend "
                           "lattice configurations (default: 2)")
    fuzz.add_argument("--max-evaluations", type=int, default=None,
                      help="safety cap on candidates per synthesis run")

    stats = sub.add_parser(
        "stats",
        help="summarise a trace JSONL file (per-span totals, attribution)",
        description="Aggregate a --trace JSONL file: per-span and "
                    "per-phase counts, total/mean durations, and the "
                    "fraction of the run attributed to named work.",
    )
    stats.add_argument("trace", metavar="TRACE.jsonl",
                       help="a trace file written by --trace")

    sub.add_parser(
        "list",
        help="list protocols and skeletons (hole counts, replica ranges)",
    )
    return parser


def cmd_verify(args: argparse.Namespace) -> int:
    """``verify``: model check one complete protocol."""
    if args.replicas < 1:
        raise CliError(f"--caches/--procs must be >= 1, got {args.replicas}")
    if args.dfs and args.explorer not in (None, "dfs"):
        raise CliError(
            f"conflicting flags: --dfs contradicts --explorer {args.explorer}"
        )
    system = PROTOCOLS[args.protocol](
        args.replicas, evictions=args.evictions, symmetry=not args.no_symmetry
    )
    strategy = args.explorer or ("dfs" if args.dfs else "bfs")
    limits = ExplorationLimits(max_states=args.max_states)
    tele = _build_telemetry(args)
    explorer = make_explorer(
        strategy, system, limits=limits, partial_order=args.por,
        packed=not args.no_packed,
        telemetry=tele,
    )
    if tele is not None:
        with tele.span(
            "verify", protocol=args.protocol, replicas=args.replicas,
            explorer=strategy,
        ) as span:
            result = explorer.run()
            span.set(
                verdict=result.verdict.value,
                states=result.stats.states_visited,
            )
        metrics = tele.metrics
        metrics.counter(
            "mc_states_visited", "states interned across candidate runs"
        ).inc(result.stats.states_visited)
        metrics.counter(
            "mc_transitions_fired", "rule firings across candidate runs"
        ).inc(result.stats.transitions_fired)
        metrics.gauge(
            "mc_peak_states", "largest single-run visited-state count"
        ).track_max(result.stats.states_visited)
        if tele.progress is not None:
            tele.progress.tick(
                states=result.stats.states_visited,
                verdict=result.verdict.value,
            )
        _finish_telemetry(tele, args)
    else:
        result = explorer.run()
    print(f"{system.name}: {result.summary()}")
    if result.trace is not None:
        formatter = format_state if args.protocol == "msi" else repr
        print("counterexample:")
        print(result.trace.format(formatter))
    return 0 if result.is_success else 1


def cmd_synth(args: argparse.Namespace) -> int:
    """``synth``: run hole synthesis on one skeleton."""
    if args.replicas < 1:
        raise CliError(f"--caches/--procs must be >= 1, got {args.replicas}")
    if args.workers < 1:
        raise CliError(f"--workers must be >= 1, got {args.workers}")
    if args.threads is not None and args.threads < 1:
        raise CliError(f"--threads must be >= 1, got {args.threads}")
    if args.naive and args.refined:
        raise CliError(
            "conflicting flags: --refined records pruning patterns, which "
            "--naive disables"
        )
    if args.naive and args.family:
        raise CliError(
            "conflicting flags: --family checks wildcard quotients, which "
            "need the pruning semantics --naive disables"
        )
    tele = _build_telemetry(args)
    config = SynthesisConfig(
        pruning=not args.naive,
        generalise_conflicts=not args.no_generalise,
        prefix_reuse=not args.no_prefix_reuse,
        refined_patterns=args.refined,
        solution_limit=args.solution_limit,
        max_evaluations=args.max_evaluations,
        compute_fingerprints=args.groups,
        explorer=args.explorer,
        partial_order=args.por,
        packed=not args.no_packed,
        family=args.family,
        store_path=args.store,
        # The config mirrors the CLI telemetry so worker *processes* (which
        # only see the config) open their own per-worker sinks.
        telemetry=tele is not None,
        trace_path=args.trace,
        progress=_progress_requested(args),
    )
    # Accelerations silently stand down in bad combinations (the engine's
    # single stand-down table); a user who *typed the flag* gets told.
    explicit = {
        "family": args.family,
        "partial_order": args.por,
        "store": args.store is not None,
    }
    for status in config.resolved_accelerations():
        if status.active or not status.requested:
            continue
        mapping = _ACCELERATION_FLAGS.get(status.name)
        if mapping is None or not explicit.get(status.name):
            continue
        flag, consequence = mapping
        reason = f" ({status.reason})" if status.reason else ""
        print(
            f"repro: {flag} is inactive{reason}; {consequence}",
            file=sys.stderr,
        )
    backend = args.backend
    if backend is None:
        backend = "threads" if (args.threads or 1) > 1 else "sequential"
    root = (
        tele.span("synth", skeleton=args.skeleton, replicas=args.replicas,
                  backend=backend)
        if tele is not None
        else None
    )
    try:
        if root is not None:
            root.__enter__()
        if backend == "processes":
            report = DistributedSynthesisEngine(
                SystemSpec(args.skeleton, args.replicas), config,
                workers=args.workers, telemetry=tele,
            ).run()
        elif backend == "threads":
            system = SKELETONS[args.skeleton](args.replicas)
            report = ParallelSynthesisEngine(
                system, config,
                threads=args.threads if args.threads is not None else 4,
                telemetry=tele,
            ).run()
        else:
            system = SKELETONS[args.skeleton](args.replicas)
            report = SynthesisEngine(system, config, telemetry=tele).run()
        if root is not None:
            root.set(
                evaluated=report.evaluated, solutions=len(report.solutions)
            )
    finally:
        if root is not None:
            root.__exit__(None, None, None)
        _finish_telemetry(tele, args)
    print(report.summary())
    if args.groups:
        print()
        print(describe_groups(report))
    return 0 if report.solutions else 1


def cmd_matrix(args: argparse.Namespace) -> int:
    """``matrix``: expand and run a declarative experiment matrix."""
    if args.list_presets:
        print("presets:")
        for name in preset_names():
            spec = load_preset(name)
            print(f"  {name:8s}  {len(expand_matrix(spec))} cells")
        return 0
    try:
        if args.spec is not None:
            spec = MatrixSpec.from_json_file(args.spec)
        elif args.preset is not None:
            spec = load_preset(args.preset)
        else:
            print("matrix: one of --preset or --spec is required "
                  "(or --list-presets)", file=sys.stderr)
            return 2
        force_por = True if args.por else (False if args.no_por else None)
        force_packed = (
            True if args.packed else (False if args.no_packed else None)
        )
        out_dir = args.out or f"matrix-runs/{spec.name}"
        if args.trace == "":
            # The default trace lands inside the output directory, whose
            # creation the runner normally owns — the sink opens first.
            os.makedirs(out_dir, exist_ok=True)
        tele = _build_telemetry(args, default_trace=f"{out_dir}/trace.jsonl")
        runner = MatrixRunner(
            spec, out_dir, fresh=args.fresh, log=print, force_por=force_por,
            force_packed=force_packed, telemetry=tele,
        )
        try:
            if tele is not None:
                with tele.span(
                    "matrix", matrix=spec.name, cells=len(runner.cells)
                ) as span:
                    result = runner.run()
                    span.set(
                        executed=result.executed, resumed=result.resumed,
                        failed=len(result.failed),
                    )
            else:
                result = runner.run()
        finally:
            _finish_telemetry(tele, args)
    except ExperimentError as exc:
        print(f"matrix: {exc}", file=sys.stderr)
        return 2
    print()
    print(result.table_text())
    print()
    print(result.summary())
    print(f"artifacts: {out_dir}/journal.jsonl, results.json, report.md")
    return 0 if not result.failed else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``fuzz``: differential-test generated protocols over the lattice."""
    # Imported here: the fuzz package is the one CLI dependency most
    # invocations never touch.
    from repro.fuzz import DifferentialRunner, run_campaign

    if args.count < 1:
        raise CliError(f"--count must be >= 1, got {args.count}")
    if args.workers < 1:
        raise CliError(f"--workers must be >= 1, got {args.workers}")
    runner = DifferentialRunner(
        args.lattice,
        max_evaluations=args.max_evaluations,
        workers=args.workers,
    )
    seeds = range(args.seed, args.seed + args.count)
    result = run_campaign(
        seeds,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        journal_path=args.journal,
        runner=runner,
        progress=lambda line: print(line, file=sys.stderr),
    )
    total = len(result.checks)
    divergent = result.divergent
    print(
        f"fuzz: {total} spec(s), lattice '{args.lattice}' "
        f"({len(runner.lattice.verify)} verify + "
        f"{len(runner.lattice.synth)} synth configs), "
        f"{len(divergent)} divergent"
    )
    for _original, shrunk, path in result.reproducers:
        where = f" -> {path}" if path is not None else ""
        print(f"  reproducer: {shrunk.name}{where}")
    if result.journal_path is not None:
        print(f"journal: {result.journal_path}")
    return 0 if result.ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: aggregate and render one trace JSONL file."""
    try:
        events = load_events(args.trace)
    except OSError as exc:
        raise CliError(f"cannot read trace: {exc}") from None
    except ValueError as exc:
        raise CliError(f"{args.trace}: {exc}") from None
    if not events:
        raise CliError(f"{args.trace}: empty trace")
    print(render_stats(events, source=args.trace))
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    """``list``: the catalog with hole counts and replica ranges."""
    print("protocols (verify):")
    width = max(len(name) for name in PROTOCOL_CATALOG)
    for name in sorted(PROTOCOL_CATALOG):
        entry = PROTOCOL_CATALOG[name]
        low, high = entry.replicas
        print(f"  {name:<{width}}  replicas {low}..{high}  {entry.summary}")
    print("skeletons (synth):")
    width = max(len(name) for name in SKELETON_CATALOG)
    for name in sorted(SKELETON_CATALOG):
        entry = SKELETON_CATALOG[name]
        low, high = entry.replicas
        # The full-family size is the product of the declared holes'
        # arities — what one `synth --family` root family spans (holes
        # discovered mid-synthesis beyond the declaration set are rare
        # and grow this at the pass boundary).
        _system, declared = build_skeleton_with_holes(name, low)
        space = 1
        for hole in declared:
            space *= hole.arity
        print(
            f"  {name:<{width}}  {entry.holes:2d} holes  "
            f"family {space:>9,}  replicas {low}..{high}  {entry.summary}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "verify": cmd_verify,
        "synth": cmd_synth,
        "matrix": cmd_matrix,
        "fuzz": cmd_fuzz,
        "stats": cmd_stats,
        "list": cmd_list,
    }
    try:
        return handlers[args.command](args)
    except CliError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
