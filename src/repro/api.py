"""Stable high-level facade: ``verify``, ``synthesize``, ``open_store``.

The engine layers underneath (``repro.core``, ``repro.mc``, ``repro.dist``,
``repro.store``) evolve; this module is the compatibility surface scripts
and notebooks should import.  Three entry points cover the common
workflows:

* :func:`verify` — model check one complete protocol and return the
  :class:`~repro.mc.result.VerificationResult`;
* :func:`synthesize` — run hole synthesis on a skeleton with any backend
  and return the :class:`~repro.core.report.SynthesisReport`;
* :func:`open_store` — open (creating if needed) a durable cross-run
  verdict store directory, for warm re-runs and inspection.

Quickstart::

    from repro import api

    result = api.verify("msi", replicas=2)
    report = api.synthesize("msi-small", store="runs/msi-store")
    warm = api.synthesize("msi-small", store="runs/msi-store")
    assert warm.model_checks <= report.model_checks

Everything here is re-exported from the top-level package, so
``from repro import synthesize`` works too.  The older deep imports
(``from repro.core import SynthesisEngine`` and friends) keep working —
this facade wraps them, it does not replace them.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.engine import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.core.report import SynthesisReport
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.errors import SynthesisError
from repro.mc.kernel import ExplorationLimits, make_explorer
from repro.mc.result import VerificationResult
from repro.mc.system import TransitionSystem
from repro.store import VerdictStore
from repro.store import open_store as _open_store

__all__ = ["open_store", "synthesize", "verify"]

#: Backends :func:`synthesize` accepts, in speedup order on multi-core
#: hosts.  ``threads`` is the GIL-bound algorithmic reproduction;
#: ``processes`` delivers real wall-clock speedups (see ``repro.dist``).
BACKENDS = ("sequential", "threads", "processes")


def verify(
    protocol: Union[str, TransitionSystem],
    replicas: int = 2,
    *,
    evictions: bool = False,
    symmetry: bool = True,
    explorer: str = "bfs",
    partial_order: bool = False,
    packed: bool = True,
    max_states: Optional[int] = None,
) -> VerificationResult:
    """Model check one complete protocol.

    Args:
        protocol: a catalog name (see ``python -m repro list``) or an
            already-built :class:`~repro.mc.system.TransitionSystem`.
        replicas: replicated-component count for catalog builds (ignored
            when a built system is passed).
        evictions: enable the catalog protocol's eviction rules, where it
            has them (ignored for built systems).
        symmetry: canonicalise states under replica symmetry (catalog
            builds only).
        explorer: frontier strategy, ``"bfs"`` (minimal traces) or
            ``"dfs"``.
        partial_order: footprint-based partial-order reduction.
        packed: run on the packed-state kernel where the protocol
            provides a codec (exact; falls back silently otherwise).
        max_states: optional exploration cap.

    Returns:
        The checker's :class:`~repro.mc.result.VerificationResult`;
        ``result.is_success`` is the verdict, ``result.trace`` the
        counterexample on failure.
    """
    if isinstance(protocol, str):
        from repro.protocols.catalog import PROTOCOL_BUILDERS

        if protocol not in PROTOCOL_BUILDERS:
            raise SynthesisError(
                f"unknown protocol {protocol!r}; known: "
                f"{', '.join(sorted(PROTOCOL_BUILDERS))}"
            )
        system = PROTOCOL_BUILDERS[protocol](
            replicas, evictions=evictions, symmetry=symmetry
        )
    else:
        system = protocol
    return make_explorer(
        explorer,
        system,
        limits=ExplorationLimits(max_states=max_states),
        partial_order=partial_order,
        packed=packed,
    ).run()


def synthesize(
    skeleton: Union[str, TransitionSystem, SystemSpec],
    config: Optional[SynthesisConfig] = None,
    *,
    replicas: int = 2,
    backend: str = "sequential",
    workers: int = 4,
    store: Optional[str] = None,
) -> SynthesisReport:
    """Run hole synthesis on a skeleton and return the merged report.

    Args:
        skeleton: a catalog skeleton name, a built holed
            :class:`~repro.mc.system.TransitionSystem` (``sequential`` /
            ``threads`` backends only), or a
            :class:`~repro.dist.SystemSpec`.
        config: synthesis knobs; defaults to the paper's procedure plus
            both sound accelerations (see
            :class:`~repro.core.engine.SynthesisConfig`).
        replicas: replicated-component count for catalog builds.
        backend: ``"sequential"``, ``"threads"`` (GIL-bound algorithmic
            reproduction), or ``"processes"`` (real multi-core speedups).
        workers: thread / worker-process count for the parallel backends.
        store: directory of a durable verdict store to record to and
            replay from (shorthand for ``config.store_path``); a second
            run against the same store re-checks almost nothing —
            ``report.model_checks`` tells you how many model-checker runs
            actually happened.

    Returns:
        The run's :class:`~repro.core.report.SynthesisReport`.
    """
    if backend not in BACKENDS:
        raise SynthesisError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    config = config or SynthesisConfig()
    if store is not None:
        from dataclasses import replace

        config = replace(config, store_path=store)
    if backend == "processes":
        if isinstance(skeleton, TransitionSystem):
            raise SynthesisError(
                "the processes backend needs a catalog name or SystemSpec "
                "(worker processes rebuild the system locally), not a "
                "built TransitionSystem"
            )
        spec = (
            skeleton
            if isinstance(skeleton, SystemSpec)
            else SystemSpec(skeleton, replicas)
        )
        return DistributedSynthesisEngine(spec, config, workers=workers).run()
    if isinstance(skeleton, SystemSpec):
        system: TransitionSystem = skeleton.build()
    elif isinstance(skeleton, str):
        from repro.protocols.catalog import SKELETON_BUILDERS

        if skeleton not in SKELETON_BUILDERS:
            raise SynthesisError(
                f"unknown skeleton {skeleton!r}; known: "
                f"{', '.join(sorted(SKELETON_BUILDERS))}"
            )
        system = SKELETON_BUILDERS[skeleton](replicas)
    else:
        system = skeleton
    if backend == "threads":
        return ParallelSynthesisEngine(system, config, threads=workers).run()
    return SynthesisEngine(system, config).run()


def open_store(path: str) -> VerdictStore:
    """Open (creating if needed) a durable verdict store directory.

    The returned :class:`~repro.store.VerdictStore` is what synthesis
    runs consult before model checking; open it directly to inspect
    (``len(store)``) or share one handle across several in-process runs.
    Close it when done.
    """
    return _open_store(path)
